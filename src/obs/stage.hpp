// Per-stage run-time accounting — the instrumentation behind the paper's
// Table-2 style "where did the seconds go" columns.
//
// StageBreakdown is a small ordered multiset of (stage name, seconds,
// calls) carried by SynthReport / BaselineReport / FlowRow: every report a
// flow produces now says how long each stage (spec-bdd, polarity-search,
// ofdd-build, fprm-extract, factor, resub, redundancy, verify, baseline-*,
// mapping, power) actually took, and the JSON run report serializes it per
// circuit so CI and benches can diff run-time *shape*, not just totals.
//
// ScopedStage is the one RAII marker the flow layers use. It fuses the
// three per-stage concerns that previously needed separate scopes:
//   1. governor stage tracking (fault injection + trip attribution) —
//      exactly ResourceGovernor::StageScope, null-governor safe;
//   2. a tracer span (obs/trace.hpp) under the same name;
//   3. wall-clock accumulation into the owning report's StageBreakdown,
//      plus a ProgressBoard update for the heartbeat when one is running.
// Stage scopes sit at per-output granularity (hundreds per circuit), so
// the always-on cost — two clock reads and a vector upsert — is noise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "util/governor.hpp"

namespace rmsyn {

/// Ordered per-stage wall-clock accounting. Entries appear in first-use
/// order, which is deterministic for a given flow (execution order), so
/// serialized breakdowns are diffable across runs.
struct StageBreakdown {
  struct Entry {
    std::string name;
    double seconds = 0.0;
    uint64_t calls = 0;
  };
  std::vector<Entry> entries;

  /// Adds `seconds` (and `calls`) to `name`, creating the entry on first use.
  void add(std::string_view name, double seconds, uint64_t calls = 1);
  void accumulate(const StageBreakdown& o);
  const Entry* find(std::string_view name) const;
  double seconds_for(std::string_view name) const;
  double total_seconds() const;
  bool empty() const { return entries.empty(); }

  /// "stages: a 1.23s (12), b 0.45s (3), ..." — descending by seconds.
  std::string to_string() const;
};

namespace obs {

/// RAII stage marker: governor stage + tracer span + breakdown timing +
/// heartbeat progress, in one scope. Both `gov` and `sb` may be null.
class ScopedStage {
public:
  ScopedStage(ResourceGovernor* gov, StageBreakdown* sb, const char* name);
  ~ScopedStage();
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

private:
  ResourceGovernor* gov_;
  StageBreakdown* sb_;
  const char* name_;
  Span span_;
  uint64_t start_ns_;
};

} // namespace obs
} // namespace rmsyn
