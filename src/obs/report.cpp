#include "obs/report.hpp"

#include <cstdio>

namespace rmsyn::obs {

Json metrics_json(const MetricsRegistry& m) {
  Json out = Json::object();
  for (const MetricsRegistry::Entry& e : m.snapshot()) {
    Json v = Json::object();
    v["kind"] = to_string(e.v.kind);
    switch (e.v.kind) {
      case MetricKind::Counter: v["count"] = e.v.count; break;
      case MetricKind::Gauge: v["value"] = e.v.value; break;
      case MetricKind::Histogram:
        v["count"] = e.v.count;
        v["sum"] = e.v.sum;
        v["min"] = e.v.min;
        v["mean"] = e.v.mean();
        v["max"] = e.v.max;
        v["p50"] = e.v.percentile(0.5);
        v["p90"] = e.v.percentile(0.9);
        v["p99"] = e.v.percentile(0.99);
        break;
      case MetricKind::Text: v["value"] = e.v.text; break;
    }
    out[e.name] = std::move(v);
  }
  return out;
}

ReportBuilder::ReportBuilder(std::string command, int jobs)
    : command_(std::move(command)), jobs_(jobs) {}

void ReportBuilder::add_row(Json row) { rows_.push_back(std::move(row)); }

void ReportBuilder::set_metrics(const MetricsRegistry& m) {
  metrics_ = metrics_json(m);
}

void ReportBuilder::set_trace(const Tracer::Summary& s,
                              double run_wall_seconds,
                              const std::string& trace_path) {
  Json t = Json::object();
  t["path"] = trace_path;
  t["events"] = s.events;
  t["dropped"] = s.dropped;
  t["threads"] = s.threads;
  t["span_seconds"] = s.span_seconds;
  t["wall_seconds"] = s.wall_seconds;
  t["coverage_pct"] =
      run_wall_seconds > 0.0
          ? 100.0 * (s.wall_seconds < run_wall_seconds ? s.wall_seconds
                                                       : run_wall_seconds) /
                run_wall_seconds
          : 0.0;
  trace_ = std::move(t);
}

namespace {

Json profile_node_json(const Profiler::Node& n) {
  Json j = Json::object();
  j["name"] = n.name;
  j["calls"] = n.calls;
  j["incl_ms"] = 1e-6 * static_cast<double>(n.incl_ns);
  j["excl_ms"] = 1e-6 * static_cast<double>(n.excl_ns);
  if (n.peak_rss_mb > 0.0) j["peak_rss_mb"] = n.peak_rss_mb;
  if (n.dd_live_nodes > 0.0) j["dd_live_nodes"] = n.dd_live_nodes;
  if (!n.children.empty()) {
    Json kids = Json::array();
    for (const Profiler::Node& c : n.children)
      kids.push_back(profile_node_json(c));
    j["children"] = std::move(kids);
  }
  return j;
}

} // namespace

void ReportBuilder::set_profile(const Profiler::Node& root,
                                const std::string& folded_path) {
  Json p = Json::object();
  p["folded_path"] = folded_path;
  p["root"] = profile_node_json(root);
  profile_ = std::move(p);
}

Json ReportBuilder::finish(double wall_seconds) const {
  Json doc = Json::object();
  doc["tool"] = "rmsyn";
  doc["schema_version"] = kReportSchemaVersion;
  doc["command"] = command_;
  doc["jobs"] = jobs_;
  doc["wall_seconds"] = wall_seconds;
  // Worst row status: the report's one-glance verdict, mirroring the CLI
  // exit code (ok < degraded < failed).
  int worst = 0;
  for (const Json& r : rows_) {
    const Json& st = r.get("status");
    const std::string& s = st.get("worst").as_string();
    const int sev = s == "failed" ? 2 : (s == "degraded" ? 1 : 0);
    if (sev > worst) worst = sev;
  }
  doc["worst_status"] =
      worst == 2 ? "failed" : (worst == 1 ? "degraded" : "ok");
  Json rows = Json::array();
  for (const Json& r : rows_) rows.push_back(r);
  doc["rows"] = std::move(rows);
  doc["metrics"] = metrics_.is_null() ? Json::object() : metrics_;
  if (!trace_.is_null()) doc["trace"] = trace_;
  if (!profile_.is_null()) doc["profile"] = profile_;
  return doc;
}

// --- subset JSON-Schema validation ------------------------------------------

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "boolean";
    case Json::Type::Number: return "number";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

bool matches_type(const Json& doc, const std::string& want) {
  if (want == "integer") {
    if (!doc.is_number()) return false;
    const double d = doc.as_number();
    return d == static_cast<double>(static_cast<long long>(d));
  }
  return want == type_name(doc.type());
}

void validate_at(const Json& doc, const Json& schema, const std::string& path,
                 std::vector<std::string>* errors) {
  if (!schema.is_object()) return;
  const std::string label = path.empty() ? "$" : path;

  if (schema.contains("type")) {
    const Json& t = schema.get("type");
    bool ok = false;
    if (t.is_string()) {
      ok = matches_type(doc, t.as_string());
    } else if (t.is_array()) {
      for (const Json& alt : t.items())
        if (alt.is_string() && matches_type(doc, alt.as_string())) {
          ok = true;
          break;
        }
    }
    if (!ok) {
      errors->push_back(label + ": expected type " + t.dump() + ", got " +
                        type_name(doc.type()));
      return; // properties/items checks would only cascade noise
    }
  }

  if (doc.is_object()) {
    const Json& req = schema.get("required");
    for (const Json& k : req.items()) {
      if (k.is_string() && !doc.contains(k.as_string()))
        errors->push_back(label + ": missing required key \"" +
                          k.as_string() + "\"");
    }
    const Json& props = schema.get("properties");
    for (const auto& [key, sub] : props.members()) {
      if (doc.contains(key))
        validate_at(doc.get(key), sub, path + "." + key, errors);
    }
  }

  if (doc.is_array() && schema.contains("items")) {
    const Json& items = schema.get("items");
    for (std::size_t i = 0; i < doc.size(); ++i)
      validate_at(doc.at(i), items, path + "[" + std::to_string(i) + "]",
                  errors);
  }
}

} // namespace

bool validate_json(const Json& doc, const Json& schema,
                   std::vector<std::string>* errors) {
  const std::size_t before = errors->size();
  validate_at(doc, schema, "", errors);
  return errors->size() == before;
}

// --- file I/O ----------------------------------------------------------------

void write_json_file(const std::string& path, const Json& doc, int indent) {
  const std::string text = doc.dump(indent);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("cannot open '" + path + "' for writing");
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("short write to '" + path + "'");
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open '" + path + "'");
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("read error on '" + path + "'");
  return out;
}

} // namespace rmsyn::obs
