// Switching-activity power estimation — the SIS `power_estimate` model the
// paper's improve%power column uses: zero-delay, temporally independent
// inputs with signal probability 0.5, switching activity 2·p·(1-p) per net,
// net capacitance proportional to fanout, P ∝ Σ activity·load.
#pragma once

#include "network/network.hpp"
#include "sim/sim.hpp"

namespace rmsyn {

struct PowerOptions {
  /// Use exact BDD signal probabilities; falls back to random-simulation
  /// estimates when the BDDs exceed the node limit.
  bool exact = true;
  std::size_t bdd_node_limit = 2'000'000;
  std::size_t sim_patterns = 16384;
  uint64_t sim_seed = 0x50FE12;
};

struct PowerReport {
  double total = 0.0;              ///< Σ activity·(1+fanout), arbitrary units
  double switching_sum = 0.0;      ///< Σ activity
  std::size_t nets = 0;
  bool exact = false;              ///< true when BDD probabilities were used
  /// Engine counters of the sampled fallback (empty on the exact path).
  SimStats sim;
};

/// Estimates power of the network (any gate mix). The metric is relative:
/// only ratios between two estimates are meaningful, as in the paper's
/// improvement column.
PowerReport estimate_power(const Network& net, const PowerOptions& opt = {});

} // namespace rmsyn
