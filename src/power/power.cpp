#include "power/power.hpp"

#include "util/errors.hpp"

#include <stdexcept>

#include "bdd/bdd.hpp"
#include "equiv/equiv.hpp"
#include "network/simulate.hpp"
#include "sim/sim.hpp"

namespace rmsyn {

PowerReport estimate_power(const Network& net, const PowerOptions& opt) {
  PowerReport rep;
  const auto live = net.live_mask();
  const auto fanouts = net.fanout_counts();

  std::vector<double> prob(net.node_count(), 0.0);
  bool exact_ok = false;
  if (opt.exact) {
    try {
      BddManager mgr(static_cast<int>(net.pi_count()));
      // Sifting keeps wide nets under the node limit; node_bdds pins every
      // node function, so reordering cannot invalidate `f`.
      if (net.pi_count() > 16) mgr.set_auto_reorder(true);
      const auto f = node_bdds(mgr, net);
      if (mgr.node_count() <= opt.bdd_node_limit) {
        for (NodeId n = 0; n < net.node_count(); ++n)
          if (live[n]) prob[n] = mgr.density(f[n]);
        exact_ok = true;
      }
    } catch (const RmsynError&) {
      throw; // injected faults / invariant violations must not be swallowed
    } catch (const std::runtime_error&) {
      exact_ok = false; // node limit inside the manager
    }
  }
  if (!exact_ok) {
    // Sampled fallback: one cached good-simulation serves every live node's
    // probability read (sim/sim.hpp).
    SimState sim(net, random_patterns(net.pi_count(), opt.sim_patterns,
                                      opt.sim_seed));
    const auto np = static_cast<double>(sim.num_patterns());
    for (NodeId n = 0; n < net.node_count(); ++n)
      if (live[n])
        prob[n] = static_cast<double>(sim.value(n).count()) / np;
    rep.sim = sim.take_stats();
  }
  rep.exact = exact_ok;

  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    // Inverters/buffers do not add switching nets of their own under the
    // zero-delay model (their output toggles iff the input does); their
    // load is attributed to the driver via fanout.
    if (t == GateType::Buf) continue;
    const double activity = 2.0 * prob[n] * (1.0 - prob[n]);
    const double load = 1.0 + static_cast<double>(fanouts[n]);
    rep.switching_sum += activity;
    rep.total += activity * load;
    ++rep.nets;
  }
  return rep;
}

} // namespace rmsyn
