// Event-driven incremental simulation engine.
//
// Every simulation consumer in rmsyn used to pay for a full levelized pass
// over the network per query: fault simulation re-simulated the whole
// network once per fault, redundancy removal once per candidate rewrite,
// and power/equiv ran private passes of their own. The classic result
// (Ulrich & Baker's concurrent fault simulation, Waicukauski's PPSFP) is
// that almost all of that work is redundant: a change at one node only
// affects its transitive fanout cone, and word-parallel values make
// "did anything change?" a cheap 64-wide compare.
//
// Two classes implement that here, both on the existing BitVec values:
//
//  * SimState — caches the good value of every node for one pattern set,
//    levelized so events process fanins-before-fanouts even after
//    rewrite_gate added higher-id nodes feeding lower-id gates. After a
//    structural edit, resimulate(dirty) re-evaluates only the fanout cone
//    of the dirty nodes; an evaluation whose value is unchanged kills its
//    event, so propagation dies out early (redundancy removal's try/revert
//    loop typically touches a handful of nodes per candidate).
//
//  * FaultProber — answers "does this stuck-at fault change any PO under
//    this SimState's patterns?" without ever mutating the state: faulty
//    values live in an epoch-stamped overlay, the fault seeds a single
//    event, and propagation stops at the first differing PO. One prober
//    serves any number of SimStates over the SAME network (fault
//    simulation keeps one state per pattern block so detected faults drop
//    out of the remaining blocks); per-worker probers make parallel fault
//    chunks bit-identical to serial.
//
// Determinism: values depend only on (network, patterns); event/statistic
// counts depend only on the dirty sets, the faults probed, and the
// network's (deterministic) fanout-list order — never on thread schedule.
// cone_nodes in particular counts evaluations up to the early exit at the
// first differing PO, so it shifts when fanout traversal order changes
// (it did once, when the SoA core replaced the state's private mirrors).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "network/simulate.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

class ThreadPool;

/// Counters for the incremental engine; absorbed into the metrics registry
/// as the sim.* group (obs/metrics.hpp) and surfaced on SynthReport /
/// FlowRow next to BddStats.
struct SimStats {
  uint64_t full_passes = 0;    ///< levelized full evaluations (state builds)
  uint64_t incr_resims = 0;    ///< resimulate() calls after edits
  uint64_t events = 0;         ///< node evaluations triggered by events
  uint64_t events_died = 0;    ///< evaluations whose value did not change
  uint64_t fault_probes = 0;   ///< FaultProber::detects() calls
  uint64_t cone_nodes = 0;     ///< faulty-cone nodes evaluated across probes
  uint64_t faults_dropped = 0; ///< faults detected before the last block
  uint64_t blocks_skipped = 0; ///< pattern blocks skipped via dropping
  uint64_t value_reuses = 0;   ///< cached good values served to clients
  /// 256-bit pattern blocks routed through the SIMD kernels, counted per
  /// node evaluation as ceil(words / simd::kBlockWords) — independent of
  /// sharding, so `--jobs N` reports the same number as serial.
  uint64_t simd_blocks = 0;
  uint64_t patterns_simulated = 0; ///< patterns x full passes (throughput)
  double full_pass_seconds = 0.0;  ///< wall time inside full passes
  /// Active kernel dispatch ("scalar"/"avx2"/"neon"); process-wide, so
  /// accumulate keeps any non-null contributor.
  const char* simd_dispatch = nullptr;

  /// Full-pass throughput (pattern-evaluations per second); 0 when no
  /// timed full pass ran.
  double patterns_per_second() const {
    return full_pass_seconds > 0.0
               ? static_cast<double>(patterns_simulated) / full_pass_seconds
               : 0.0;
  }

  // Inline so rmsyn_obs can absorb the struct header-only (the same deal
  // BddStats/SchedStats get).
  void accumulate(const SimStats& o) {
    full_passes += o.full_passes;
    incr_resims += o.incr_resims;
    events += o.events;
    events_died += o.events_died;
    fault_probes += o.fault_probes;
    cone_nodes += o.cone_nodes;
    faults_dropped += o.faults_dropped;
    blocks_skipped += o.blocks_skipped;
    value_reuses += o.value_reuses;
    simd_blocks += o.simd_blocks;
    patterns_simulated += o.patterns_simulated;
    full_pass_seconds += o.full_pass_seconds;
    if (o.simd_dispatch != nullptr) simd_dispatch = o.simd_dispatch;
  }
  bool empty() const {
    return full_passes == 0 && incr_resims == 0 && events == 0 &&
           events_died == 0 && fault_probes == 0 && cone_nodes == 0 &&
           faults_dropped == 0 && blocks_skipped == 0 && value_reuses == 0 &&
           simd_blocks == 0 && patterns_simulated == 0;
  }
};

/// Cached good-simulation of one network under one pattern set.
///
/// The referenced network must outlive the state. Structural edits
/// (rewrite_gate / newly added nodes) are legal as long as every rewritten
/// node is passed to resimulate() before values are read again; new nodes
/// reachable from a dirty node are discovered and folded in automatically.
/// Retargeting POs after construction is not supported.
///
/// Since the SoA refactor the network maintains its own fanout lists and
/// structural levels, so the state no longer mirrors fanin/fanout/level
/// structure — it reads the network's maintained data directly and keeps
/// only the per-node value cache plus the active (evaluated-at-least-once)
/// set. This halves the per-node bookkeeping and removes every per-node
/// vector allocation from the engine.
class SimState {
public:
  /// With a pool, the construction-time full pass shards the pattern
  /// words across workers (disjoint word ranges of the same value rows,
  /// bit-identical to serial by construction). The pool is only used for
  /// that pass; incremental resim cones are too small to shard.
  SimState(const Network& net, PatternSet patterns,
           ThreadPool* pool = nullptr);

  const Network& net() const { return net_; }
  std::size_t num_patterns() const { return patterns_.num_patterns; }

  /// Cached value of node n (64 patterns per word). PIs/constants are
  /// their pattern rows; nodes outside the PO-cone-plus-PI set simulate()
  /// covers stay all-zero, matching simulate()'s result vector.
  const BitVec& value(NodeId n) const {
    ++stats_.value_reuses;
    return values_[n];
  }

  std::vector<BitVec> po_values() const;
  /// True when every PO value equals `expect` (one BitVec per PO).
  bool po_values_match(const std::vector<BitVec>& expect) const;

  /// Declares `dirty` structurally edited and re-simulates its cone.
  void resimulate(NodeId dirty);
  /// Multi-node edit: all structure is synced before any value moves, so
  /// interdependent rewrites settle in one wave.
  void resimulate(const std::vector<NodeId>& dirty);

  const SimStats& stats() const { return stats_; }
  /// Moves the counters out (e.g. into a report) and zeroes them.
  SimStats take_stats();

private:
  friend class FaultProber;

  void grow();
  void sync_node(NodeId n);
  void ensure_active(NodeId n);
  void push_event(NodeId n);
  void propagate();
  void eval_node(NodeId n, BitVec& out) const;

  const Network& net_;
  PatternSet patterns_;
  BitVec ones_, zeros_;

  std::vector<BitVec> values_;
  std::vector<uint8_t> active_; ///< evaluated at least once (≈ topo set)
  std::vector<uint8_t> is_po_;

  // Level-bucketed event queue: events always fire at strictly higher
  // levels than the node that spawned them, so one ascending sweep settles
  // the whole wave.
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<uint8_t> queued_;
  std::size_t pending_ = 0;

  BitVec scratch_; ///< reused evaluation buffer (alloc-free steady state)
  mutable SimStats stats_;
};

/// Stuck-at fault oracle over a const SimState (or several states sharing
/// one network — fault simulation keeps one state per pattern block).
/// Faulty values live in an epoch-stamped overlay, so consecutive probes
/// reuse the buffers without clearing; the good state is never touched.
/// Not thread-safe: use one prober per worker.
class FaultProber {
public:
  /// Sizes the overlay for `proto`'s network; any SimState over the same
  /// network may be probed.
  explicit FaultProber(const SimState& proto);

  /// True when the stuck-at fault (pin < 0 = stem, else that input pin
  /// forced to `stuck_value`) changes some PO value under s's patterns.
  /// Propagation is cone-limited and stops at the first differing PO.
  bool detects(const SimState& s, NodeId node, int pin, bool stuck_value);

  const SimStats& stats() const { return stats_; }

private:
  void grow(const SimState& s);
  void push(const SimState& s, NodeId n);

  std::vector<BitVec> faulty_;   ///< overlay value, valid iff stamp == epoch
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 0;

  std::vector<std::vector<NodeId>> buckets_;
  std::vector<uint8_t> queued_;
  std::size_t pending_ = 0;

  BitVec scratch_;
  SimStats stats_;
};

} // namespace rmsyn
