#include "sim/sim.hpp"

#include <algorithm>
#include <cassert>

#include "network/eval_kernel.hpp"
#include "obs/trace.hpp"
#include "sched/pool.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

namespace {

inline bool is_source(GateType t) {
  return t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1;
}

inline std::size_t blocks_per_eval(std::size_t words) {
  return (words + simd::kBlockWords - 1) / simd::kBlockWords;
}

} // namespace

// --- SimState ----------------------------------------------------------------

SimState::SimState(const Network& net, PatternSet patterns, ThreadPool* pool)
    : net_(net), patterns_(std::move(patterns)) {
  assert(patterns_.bits.size() == net_.pi_count());
  const std::size_t np = patterns_.num_patterns;
  zeros_ = BitVec(np);
  ones_ = BitVec(np);
  ones_.set_all();

  const std::size_t count = net_.node_count();
  values_.assign(count, zeros_);
  active_.assign(count, 0);
  is_po_.assign(count, 0);
  queued_.assign(count, 0);

  values_[Network::kConst1] = ones_;
  active_[Network::kConst0] = active_[Network::kConst1] = 1;
  for (std::size_t i = 0; i < net_.pi_count(); ++i) {
    const NodeId pi = net_.pis()[i];
    values_[pi] = patterns_.bits[i];
    active_[pi] = 1;
  }
  for (std::size_t i = 0; i < net_.po_count(); ++i) is_po_[net_.po(i)] = 1;

  // Full pass: every gate's words are computed directly into its
  // pre-allocated value row via the SIMD kernels. With a pool the word
  // range is sharded across workers — gate evaluation is word-local, so
  // disjoint ranges of the same rows compose to exactly the serial
  // result. Fanout lists and structural levels are maintained by the
  // network itself since the SoA refactor; the state only evaluates
  // values.
  RMSYN_SPAN("sim-full-pass");
  // topo_order() re-runs a full DFS per call — hoist the one copy every
  // shard (and the activation sweep) iterates.
  const std::vector<NodeId> order = net_.topo_order();
  Stopwatch watch;
  const std::size_t nw = (np + 63) / 64;
  const auto pass_range = [this, &order](std::size_t w0, std::size_t w1) {
    const std::size_t nwr = w1 - w0;
    if (nwr == 0) return;
    const uint64_t* ins_inline[kEvalInlineFanins];
    std::vector<const uint64_t*> ins_heap;
    for (const NodeId n : order) {
      const GateType t = net_.type(n);
      if (is_source(t)) continue;
      const FaninSpan fi = net_.fanins(n);
      const uint64_t** ins = ins_inline;
      if (fi.size() > kEvalInlineFanins) {
        ins_heap.resize(fi.size());
        ins = ins_heap.data();
      }
      for (std::size_t k = 0; k < fi.size(); ++k)
        ins[k] = values_[fi[k]].data() + w0;
      eval_gate_words(t, ins, fi.size(), values_[n].data() + w0, nwr);
    }
  };

  // Sharding only pays once each shard has a few SIMD blocks of work.
  constexpr std::size_t kMinWordsPerShard = 8;
  std::size_t nshards = 1;
  if (pool != nullptr && pool->worker_count() > 0)
    nshards = std::min<std::size_t>(
        static_cast<std::size_t>(pool->slot_count()), nw / kMinWordsPerShard);
  if (nshards <= 1) {
    pass_range(0, nw);
  } else {
    std::vector<Future<bool>> futs;
    futs.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
      const std::size_t w0 = s * nw / nshards;
      const std::size_t w1 = (s + 1) * nw / nshards;
      futs.push_back(pool->submit([&pass_range, w0, w1] {
        pass_range(w0, w1);
        return true;
      }));
    }
    for (auto& fut : futs) pool->wait(fut);
  }

  // Complemented gates leave garbage in the unused tail bits of the last
  // word; restore the invariant and activate in one sweep. simd_blocks is
  // counted per node evaluation (not per shard) so the stat is identical
  // under any --jobs value.
  const std::size_t bpe = blocks_per_eval(nw);
  for (const NodeId n : order) {
    if (is_source(net_.type(n))) continue;
    values_[n].mask_tail();
    values_[n].assert_tail_clear();
    active_[n] = 1;
    stats_.simd_blocks += bpe;
  }
  ++stats_.full_passes;
  stats_.patterns_simulated += np;
  stats_.full_pass_seconds += watch.seconds();
  stats_.simd_dispatch = simd::dispatch_name();
}

std::vector<BitVec> SimState::po_values() const {
  std::vector<BitVec> out;
  out.reserve(net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    out.push_back(values_[net_.po(i)]);
  return out;
}

bool SimState::po_values_match(const std::vector<BitVec>& expect) const {
  assert(expect.size() == net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    if (values_[net_.po(i)].differs(expect[i])) return false;
  return true;
}

void SimState::resimulate(NodeId dirty) {
  RMSYN_SPAN("sim-resim");
  ++stats_.incr_resims;
  grow();
  sync_node(dirty);
  push_event(dirty);
  propagate();
}

void SimState::resimulate(const std::vector<NodeId>& dirty) {
  RMSYN_SPAN("sim-resim");
  ++stats_.incr_resims;
  grow();
  // All dirty cones are activated before any value moves, so
  // interdependent rewrites settle in one wave.
  for (const NodeId n : dirty) sync_node(n);
  for (const NodeId n : dirty) push_event(n);
  propagate();
}

SimStats SimState::take_stats() {
  SimStats out = stats_;
  stats_ = SimStats{};
  return out;
}

void SimState::grow() {
  const std::size_t count = net_.node_count();
  if (values_.size() >= count) return;
  values_.resize(count, zeros_);
  active_.resize(count, 0);
  is_po_.resize(count, 0);
  queued_.resize(count, 0);
}

void SimState::sync_node(NodeId n) {
  // The network maintains fanin/fanout/level structure itself, so the only
  // per-edit work left is activating nodes the state has never evaluated:
  // a rewrite may hand an active gate brand-new fanins (fresh inverters),
  // whose cones must carry real values before the dirty event fires.
  if (!active_[n]) {
    ensure_active(n);
    return;
  }
  if (is_source(net_.type(n))) return;
  for (const NodeId f : net_.fanins(n)) ensure_active(f);
}

void SimState::ensure_active(NodeId n) {
  if (active_[n]) return;
  // Activate the whole inactive cone below n, fanins first.
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId m = stack.back();
    if (active_[m]) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const NodeId f : net_.fanins(m)) {
      if (!active_[f]) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    active_[m] = 1;
    if (is_source(net_.type(m))) continue; // PI added post-construction: stays 0
    eval_node(m, scratch_);
    std::swap(values_[m], scratch_);
    ++stats_.events;
  }
}

void SimState::push_event(NodeId n) {
  if (!active_[n] || queued_[n] || is_source(net_.type(n))) return;
  queued_[n] = 1;
  const uint32_t lv = net_.level(n);
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

void SimState::propagate() {
  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    // push_event may resize buckets_, so index (never reference) the row;
    // new events always land at strictly higher levels.
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId n = buckets_[lv][i];
      queued_[n] = 0;
      --pending_;
      ++stats_.events;
      eval_node(n, scratch_);
      // Any-differing-word test (vectorized, early exit): unchanged
      // values kill the event.
      if (!scratch_.differs(values_[n])) {
        ++stats_.events_died;
        continue;
      }
      std::swap(values_[n], scratch_);
      // Maintained fanout lists; push_event filters inactive readers
      // (nodes outside the PO cone that were never evaluated).
      for (const NodeId fo : net_.fanouts(n)) push_event(fo);
    }
    buckets_[lv].clear();
  }
}

void SimState::eval_node(NodeId n, BitVec& out) const {
  const std::size_t np = patterns_.num_patterns;
  if (out.size() != np) out = BitVec(np);
  const FaninSpan fi = net_.fanins(n);
  const uint64_t* ins_inline[kEvalInlineFanins];
  std::vector<const uint64_t*> ins_heap;
  const uint64_t** ins = ins_inline;
  if (fi.size() > kEvalInlineFanins) {
    ins_heap.resize(fi.size());
    ins = ins_heap.data();
  }
  for (std::size_t k = 0; k < fi.size(); ++k) ins[k] = values_[fi[k]].data();
  eval_gate_words(net_.type(n), ins, fi.size(), out.data(), out.words());
  out.mask_tail();
  stats_.simd_blocks += blocks_per_eval(out.words());
}

// --- FaultProber -------------------------------------------------------------

FaultProber::FaultProber(const SimState& proto) { grow(proto); }

void FaultProber::grow(const SimState& s) {
  const std::size_t count = s.values_.size();
  if (faulty_.size() < count) {
    faulty_.resize(count);
    stamp_.resize(count, 0);
    queued_.resize(count, 0);
  }
}

void FaultProber::push(const SimState& s, NodeId n) {
  // Inactive readers (outside the state's evaluated cone) cannot reach a
  // PO through evaluated logic; skipping them mirrors the mirror-based
  // pre-SoA engine, which never linked them in.
  if (queued_[n] || !s.active_[n]) return;
  queued_[n] = 1;
  const uint32_t lv = s.net().level(n);
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

bool FaultProber::detects(const SimState& s, NodeId node, int pin,
                          bool stuck_value) {
  ++stats_.fault_probes;
  grow(s);
  ++epoch_;
  const Network& net = s.net();
  const BitVec& forced = stuck_value ? s.ones_ : s.zeros_;
  const std::size_t np = s.num_patterns();
  const std::size_t nw = forced.words();
  const std::size_t bpe = blocks_per_eval(nw);

  // Evaluates node m with faulty overlay values (and, for the seed, the
  // forced pin) through the SIMD kernels into scratch_.
  const uint64_t* ins_inline[kEvalInlineFanins];
  std::vector<const uint64_t*> ins_heap;
  const auto eval_overlay = [&](NodeId m, int forced_pin) {
    if (scratch_.size() != np) scratch_ = BitVec(np);
    const FaninSpan fi = net.fanins(m);
    const uint64_t** ins = ins_inline;
    if (fi.size() > kEvalInlineFanins) {
      ins_heap.resize(fi.size());
      ins = ins_heap.data();
    }
    for (std::size_t k = 0; k < fi.size(); ++k) {
      if (static_cast<int>(k) == forced_pin) {
        ins[k] = forced.data();
      } else {
        const NodeId f = fi[k];
        ins[k] = (stamp_[f] == epoch_ ? faulty_[f] : s.values_[f]).data();
      }
    }
    eval_gate_words(net.type(m), ins, fi.size(), scratch_.data(), nw);
    scratch_.mask_tail();
    stats_.simd_blocks += bpe;
  };

  // Seed: the faulty value at the fault site itself.
  if (pin < 0) {
    scratch_ = forced;
  } else {
    eval_overlay(node, pin);
  }
  ++stats_.cone_nodes;
  // Vectorized overlay compare: early-exit any-differing-word.
  if (!scratch_.differs(s.values_[node])) {
    ++stats_.events_died;
    return false;
  }
  std::swap(faulty_[node], scratch_);
  stamp_[node] = epoch_;
  bool detected = s.is_po_[node] != 0;
  if (!detected)
    for (const NodeId fo : net.fanouts(node)) push(s, fo);

  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId m = buckets_[lv][i];
      queued_[m] = 0;
      --pending_;
      if (detected) continue; // drain remaining queue flags only
      eval_overlay(m, -1);
      ++stats_.cone_nodes;
      if (!scratch_.differs(s.values_[m])) {
        ++stats_.events_died;
        continue;
      }
      std::swap(faulty_[m], scratch_);
      stamp_[m] = epoch_;
      if (s.is_po_[m]) {
        detected = true;
        continue;
      }
      for (const NodeId fo : net.fanouts(m)) push(s, fo);
    }
    buckets_[lv].clear();
  }
  return detected;
}

} // namespace rmsyn
