#include "sim/sim.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace rmsyn {

namespace {

inline bool is_source(GateType t) {
  return t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1;
}

/// Evaluates one gate into `out`; in(k) is the k-th fanin value. `out`
/// must not alias any input (the callers use a dedicated scratch buffer).
template <typename In>
void eval_gate_into(GateType t, std::size_t nfi, const In& in, BitVec& out) {
  out = in(0);
  switch (t) {
    case GateType::Buf:
      break;
    case GateType::Not:
      out.flip_all();
      break;
    case GateType::And:
    case GateType::Nand:
      for (std::size_t k = 1; k < nfi; ++k) out &= in(k);
      if (t == GateType::Nand) out.flip_all();
      break;
    case GateType::Or:
    case GateType::Nor:
      for (std::size_t k = 1; k < nfi; ++k) out |= in(k);
      if (t == GateType::Nor) out.flip_all();
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t k = 1; k < nfi; ++k) out ^= in(k);
      if (t == GateType::Xnor) out.flip_all();
      break;
    default:
      break; // sources are never evaluated
  }
}

} // namespace

// --- SimState ----------------------------------------------------------------

SimState::SimState(const Network& net, PatternSet patterns)
    : net_(net), patterns_(std::move(patterns)) {
  assert(patterns_.bits.size() == net_.pi_count());
  const std::size_t np = patterns_.num_patterns;
  zeros_ = BitVec(np);
  ones_ = BitVec(np);
  ones_.set_all();

  const std::size_t count = net_.node_count();
  values_.assign(count, zeros_);
  active_.assign(count, 0);
  is_po_.assign(count, 0);
  queued_.assign(count, 0);

  values_[Network::kConst1] = ones_;
  active_[Network::kConst0] = active_[Network::kConst1] = 1;
  for (std::size_t i = 0; i < net_.pi_count(); ++i) {
    const NodeId pi = net_.pis()[i];
    values_[pi] = patterns_.bits[i];
    active_[pi] = 1;
  }
  for (std::size_t i = 0; i < net_.po_count(); ++i) is_po_[net_.po(i)] = 1;

  // Fanout lists and structural levels are maintained by the network
  // itself since the SoA refactor; the state only evaluates values.
  RMSYN_SPAN("sim-full-pass");
  for (const NodeId n : net_.topo_order()) {
    if (is_source(net_.type(n))) continue;
    eval_node(n, scratch_);
    std::swap(values_[n], scratch_);
    active_[n] = 1;
  }
  ++stats_.full_passes;
}

std::vector<BitVec> SimState::po_values() const {
  std::vector<BitVec> out;
  out.reserve(net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    out.push_back(values_[net_.po(i)]);
  return out;
}

bool SimState::po_values_match(const std::vector<BitVec>& expect) const {
  assert(expect.size() == net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    if (!(values_[net_.po(i)] == expect[i])) return false;
  return true;
}

void SimState::resimulate(NodeId dirty) {
  RMSYN_SPAN("sim-resim");
  ++stats_.incr_resims;
  grow();
  sync_node(dirty);
  push_event(dirty);
  propagate();
}

void SimState::resimulate(const std::vector<NodeId>& dirty) {
  RMSYN_SPAN("sim-resim");
  ++stats_.incr_resims;
  grow();
  // All dirty cones are activated before any value moves, so
  // interdependent rewrites settle in one wave.
  for (const NodeId n : dirty) sync_node(n);
  for (const NodeId n : dirty) push_event(n);
  propagate();
}

SimStats SimState::take_stats() {
  SimStats out = stats_;
  stats_ = SimStats{};
  return out;
}

void SimState::grow() {
  const std::size_t count = net_.node_count();
  if (values_.size() >= count) return;
  values_.resize(count, zeros_);
  active_.resize(count, 0);
  is_po_.resize(count, 0);
  queued_.resize(count, 0);
}

void SimState::sync_node(NodeId n) {
  // The network maintains fanin/fanout/level structure itself, so the only
  // per-edit work left is activating nodes the state has never evaluated:
  // a rewrite may hand an active gate brand-new fanins (fresh inverters),
  // whose cones must carry real values before the dirty event fires.
  if (!active_[n]) {
    ensure_active(n);
    return;
  }
  if (is_source(net_.type(n))) return;
  for (const NodeId f : net_.fanins(n)) ensure_active(f);
}

void SimState::ensure_active(NodeId n) {
  if (active_[n]) return;
  // Activate the whole inactive cone below n, fanins first.
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId m = stack.back();
    if (active_[m]) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const NodeId f : net_.fanins(m)) {
      if (!active_[f]) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    active_[m] = 1;
    if (is_source(net_.type(m))) continue; // PI added post-construction: stays 0
    eval_node(m, scratch_);
    std::swap(values_[m], scratch_);
    ++stats_.events;
  }
}

void SimState::push_event(NodeId n) {
  if (!active_[n] || queued_[n] || is_source(net_.type(n))) return;
  queued_[n] = 1;
  const uint32_t lv = net_.level(n);
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

void SimState::propagate() {
  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    // push_event may resize buckets_, so index (never reference) the row;
    // new events always land at strictly higher levels.
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId n = buckets_[lv][i];
      queued_[n] = 0;
      --pending_;
      ++stats_.events;
      eval_node(n, scratch_);
      if (scratch_ == values_[n]) {
        ++stats_.events_died;
        continue;
      }
      std::swap(values_[n], scratch_);
      // Maintained fanout lists; push_event filters inactive readers
      // (nodes outside the PO cone that were never evaluated).
      for (const NodeId fo : net_.fanouts(n)) push_event(fo);
    }
    buckets_[lv].clear();
  }
}

void SimState::eval_node(NodeId n, BitVec& out) const {
  const FaninSpan fi = net_.fanins(n);
  eval_gate_into(
      net_.type(n), fi.size(),
      [&](std::size_t k) -> const BitVec& { return values_[fi[k]]; }, out);
}

// --- FaultProber -------------------------------------------------------------

FaultProber::FaultProber(const SimState& proto) { grow(proto); }

void FaultProber::grow(const SimState& s) {
  const std::size_t count = s.values_.size();
  if (faulty_.size() < count) {
    faulty_.resize(count);
    stamp_.resize(count, 0);
    queued_.resize(count, 0);
  }
}

void FaultProber::push(const SimState& s, NodeId n) {
  // Inactive readers (outside the state's evaluated cone) cannot reach a
  // PO through evaluated logic; skipping them mirrors the mirror-based
  // pre-SoA engine, which never linked them in.
  if (queued_[n] || !s.active_[n]) return;
  queued_[n] = 1;
  const uint32_t lv = s.net().level(n);
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

bool FaultProber::detects(const SimState& s, NodeId node, int pin,
                          bool stuck_value) {
  ++stats_.fault_probes;
  grow(s);
  ++epoch_;
  const Network& net = s.net();
  const BitVec& forced = stuck_value ? s.ones_ : s.zeros_;

  // Seed: the faulty value at the fault site itself.
  if (pin < 0) {
    scratch_ = forced;
  } else {
    const FaninSpan fi = net.fanins(node);
    eval_gate_into(
        net.type(node), fi.size(),
        [&](std::size_t k) -> const BitVec& {
          return k == static_cast<std::size_t>(pin) ? forced : s.values_[fi[k]];
        },
        scratch_);
  }
  ++stats_.cone_nodes;
  if (scratch_ == s.values_[node]) {
    ++stats_.events_died;
    return false;
  }
  std::swap(faulty_[node], scratch_);
  stamp_[node] = epoch_;
  bool detected = s.is_po_[node] != 0;
  if (!detected)
    for (const NodeId fo : net.fanouts(node)) push(s, fo);

  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId m = buckets_[lv][i];
      queued_[m] = 0;
      --pending_;
      if (detected) continue; // drain remaining queue flags only
      const FaninSpan fi = net.fanins(m);
      eval_gate_into(
          net.type(m), fi.size(),
          [&](std::size_t k) -> const BitVec& {
            const NodeId f = fi[k];
            return stamp_[f] == epoch_ ? faulty_[f] : s.values_[f];
          },
          scratch_);
      ++stats_.cone_nodes;
      if (scratch_ == s.values_[m]) {
        ++stats_.events_died;
        continue;
      }
      std::swap(faulty_[m], scratch_);
      stamp_[m] = epoch_;
      if (s.is_po_[m]) {
        detected = true;
        continue;
      }
      for (const NodeId fo : net.fanouts(m)) push(s, fo);
    }
    buckets_[lv].clear();
  }
  return detected;
}

} // namespace rmsyn
