#include "sim/sim.hpp"

#include <algorithm>
#include <cassert>

namespace rmsyn {

namespace {

inline bool is_source(GateType t) {
  return t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1;
}

/// Evaluates one gate into `out`; in(k) is the k-th fanin value. `out`
/// must not alias any input (the callers use a dedicated scratch buffer).
template <typename In>
void eval_gate_into(GateType t, std::size_t nfi, const In& in, BitVec& out) {
  out = in(0);
  switch (t) {
    case GateType::Buf:
      break;
    case GateType::Not:
      out.flip_all();
      break;
    case GateType::And:
    case GateType::Nand:
      for (std::size_t k = 1; k < nfi; ++k) out &= in(k);
      if (t == GateType::Nand) out.flip_all();
      break;
    case GateType::Or:
    case GateType::Nor:
      for (std::size_t k = 1; k < nfi; ++k) out |= in(k);
      if (t == GateType::Nor) out.flip_all();
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t k = 1; k < nfi; ++k) out ^= in(k);
      if (t == GateType::Xnor) out.flip_all();
      break;
    default:
      break; // sources are never evaluated
  }
}

} // namespace

// --- SimState ----------------------------------------------------------------

SimState::SimState(const Network& net, PatternSet patterns)
    : net_(net), patterns_(std::move(patterns)) {
  assert(patterns_.bits.size() == net_.pi_count());
  const std::size_t np = patterns_.num_patterns;
  zeros_ = BitVec(np);
  ones_ = BitVec(np);
  ones_.set_all();

  const std::size_t count = net_.node_count();
  values_.assign(count, zeros_);
  fanins_.assign(count, {});
  fanouts_.assign(count, {});
  levels_.assign(count, 0);
  active_.assign(count, 0);
  is_po_.assign(count, 0);
  queued_.assign(count, 0);

  values_[Network::kConst1] = ones_;
  active_[Network::kConst0] = active_[Network::kConst1] = 1;
  for (std::size_t i = 0; i < net_.pi_count(); ++i) {
    const NodeId pi = net_.pis()[i];
    values_[pi] = patterns_.bits[i];
    active_[pi] = 1;
  }
  for (std::size_t i = 0; i < net_.po_count(); ++i) is_po_[net_.po(i)] = 1;

  for (const NodeId n : net_.topo_order()) {
    if (is_source(net_.type(n))) continue;
    fanins_[n] = net_.fanins(n);
    uint32_t lv = 0;
    for (const NodeId f : fanins_[n]) {
      fanouts_[f].push_back(n);
      lv = std::max(lv, levels_[f] + 1);
    }
    levels_[n] = lv;
    eval_node(n, scratch_);
    std::swap(values_[n], scratch_);
    active_[n] = 1;
  }
  ++stats_.full_passes;
}

std::vector<BitVec> SimState::po_values() const {
  std::vector<BitVec> out;
  out.reserve(net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    out.push_back(values_[net_.po(i)]);
  return out;
}

bool SimState::po_values_match(const std::vector<BitVec>& expect) const {
  assert(expect.size() == net_.po_count());
  for (std::size_t i = 0; i < net_.po_count(); ++i)
    if (!(values_[net_.po(i)] == expect[i])) return false;
  return true;
}

void SimState::resimulate(NodeId dirty) {
  ++stats_.incr_resims;
  grow();
  sync_node(dirty);
  push_event(dirty);
  propagate();
}

void SimState::resimulate(const std::vector<NodeId>& dirty) {
  ++stats_.incr_resims;
  grow();
  for (const NodeId n : dirty) sync_node(n);
  for (const NodeId n : dirty) push_event(n);
  propagate();
}

SimStats SimState::take_stats() {
  SimStats out = stats_;
  stats_ = SimStats{};
  return out;
}

void SimState::grow() {
  const std::size_t count = net_.node_count();
  if (values_.size() >= count) return;
  values_.resize(count, zeros_);
  fanins_.resize(count);
  fanouts_.resize(count);
  levels_.resize(count, 0);
  active_.resize(count, 0);
  is_po_.resize(count, 0);
  queued_.resize(count, 0);
}

void SimState::ensure_active(NodeId n) {
  if (active_[n]) return;
  // Activate the whole inactive cone below n, fanins first.
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId m = stack.back();
    if (active_[m]) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const NodeId f : net_.fanins(m)) {
      if (!active_[f]) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    active_[m] = 1;
    if (is_source(net_.type(m))) continue; // PI added post-construction: stays 0
    fanins_[m] = net_.fanins(m);
    uint32_t lv = 0;
    for (const NodeId f : fanins_[m]) {
      fanouts_[f].push_back(m);
      lv = std::max(lv, levels_[f] + 1);
    }
    levels_[m] = lv;
    eval_node(m, scratch_);
    std::swap(values_[m], scratch_);
    ++stats_.events;
  }
}

void SimState::sync_node(NodeId n) {
  if (!active_[n]) {
    ensure_active(n);
    return;
  }
  if (is_source(net_.type(n))) return;
  const auto& now = net_.fanins(n);
  auto& mirror = fanins_[n];
  if (mirror != now) {
    for (const NodeId f : mirror) {
      auto& fo = fanouts_[f];
      const auto it = std::find(fo.begin(), fo.end(), n);
      if (it != fo.end()) {
        *it = fo.back();
        fo.pop_back();
      }
    }
    for (const NodeId f : now) {
      ensure_active(f);
      fanouts_[f].push_back(n);
    }
    mirror = now;
  }
  repair_levels_from(n);
}

void SimState::repair_levels_from(NodeId n) {
  std::vector<NodeId> wl{n};
  while (!wl.empty()) {
    const NodeId m = wl.back();
    wl.pop_back();
    uint32_t lv = 0;
    for (const NodeId f : fanins_[m]) lv = std::max(lv, levels_[f] + 1);
    if (lv == levels_[m]) continue;
    levels_[m] = lv;
    for (const NodeId fo : fanouts_[m]) wl.push_back(fo);
  }
}

void SimState::push_event(NodeId n) {
  if (!active_[n] || queued_[n] || is_source(net_.type(n))) return;
  queued_[n] = 1;
  const uint32_t lv = levels_[n];
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

void SimState::propagate() {
  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    // push_event may resize buckets_, so index (never reference) the row;
    // new events always land at strictly higher levels.
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId n = buckets_[lv][i];
      queued_[n] = 0;
      --pending_;
      ++stats_.events;
      eval_node(n, scratch_);
      if (scratch_ == values_[n]) {
        ++stats_.events_died;
        continue;
      }
      std::swap(values_[n], scratch_);
      for (const NodeId fo : fanouts_[n]) push_event(fo);
    }
    buckets_[lv].clear();
  }
}

void SimState::eval_node(NodeId n, BitVec& out) const {
  const auto& fi = fanins_[n];
  eval_gate_into(
      net_.type(n), fi.size(),
      [&](std::size_t k) -> const BitVec& { return values_[fi[k]]; }, out);
}

// --- FaultProber -------------------------------------------------------------

FaultProber::FaultProber(const SimState& proto) { grow(proto); }

void FaultProber::grow(const SimState& s) {
  const std::size_t count = s.values_.size();
  if (faulty_.size() < count) {
    faulty_.resize(count);
    stamp_.resize(count, 0);
    queued_.resize(count, 0);
  }
}

void FaultProber::push(const SimState& s, NodeId n) {
  if (queued_[n]) return;
  queued_[n] = 1;
  const uint32_t lv = s.levels_[n];
  if (buckets_.size() <= lv) buckets_.resize(lv + 1);
  buckets_[lv].push_back(n);
  ++pending_;
}

bool FaultProber::detects(const SimState& s, NodeId node, int pin,
                          bool stuck_value) {
  ++stats_.fault_probes;
  grow(s);
  ++epoch_;
  const BitVec& forced = stuck_value ? s.ones_ : s.zeros_;

  // Seed: the faulty value at the fault site itself.
  if (pin < 0) {
    scratch_ = forced;
  } else {
    const auto& fi = s.fanins_[node];
    eval_gate_into(
        s.net_.type(node), fi.size(),
        [&](std::size_t k) -> const BitVec& {
          return k == static_cast<std::size_t>(pin) ? forced : s.values_[fi[k]];
        },
        scratch_);
  }
  ++stats_.cone_nodes;
  if (scratch_ == s.values_[node]) {
    ++stats_.events_died;
    return false;
  }
  std::swap(faulty_[node], scratch_);
  stamp_[node] = epoch_;
  bool detected = s.is_po_[node] != 0;
  if (!detected)
    for (const NodeId fo : s.fanouts_[node]) push(s, fo);

  for (std::size_t lv = 0; lv < buckets_.size() && pending_ > 0; ++lv) {
    for (std::size_t i = 0; i < buckets_[lv].size(); ++i) {
      const NodeId m = buckets_[lv][i];
      queued_[m] = 0;
      --pending_;
      if (detected) continue; // drain remaining queue flags only
      const auto& fi = s.fanins_[m];
      eval_gate_into(
          s.net_.type(m), fi.size(),
          [&](std::size_t k) -> const BitVec& {
            const NodeId f = fi[k];
            return stamp_[f] == epoch_ ? faulty_[f] : s.values_[f];
          },
          scratch_);
      ++stats_.cone_nodes;
      if (scratch_ == s.values_[m]) {
        ++stats_.events_died;
        continue;
      }
      std::swap(faulty_[m], scratch_);
      stamp_[m] = epoch_;
      if (s.is_po_[m]) {
        detected = true;
        continue;
      }
      for (const NodeId fo : s.fanouts_[m]) push(s, fo);
    }
    buckets_[lv].clear();
  }
  return detected;
}

} // namespace rmsyn
