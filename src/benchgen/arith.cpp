// Exact generators for the arithmetic building blocks behind the Table-2
// circuits: ripple adders (adr4/add6/radd/z4ml/cm82a/my_adder), the array
// multiplier (mlp4), squarers (sqr6/squar5), ones counters (rd53/rd73/rd84),
// symmetric weight bands (9sym/sym10), and parity chains (parity/xor10).
#include "benchgen/spec.hpp"

#include <cassert>
#include <stdexcept>

#include "sop/minimize.hpp"

namespace rmsyn {

namespace {

void full_adder(Network& net, NodeId a, NodeId b, NodeId cin, NodeId& sum,
                NodeId& cout) {
  const NodeId axb = net.add_xor(a, b);
  sum = net.add_xor(axb, cin);
  cout = net.add_or(net.add_and(a, b), net.add_and(axb, cin));
}

void half_adder(Network& net, NodeId a, NodeId b, NodeId& sum, NodeId& cout) {
  sum = net.add_xor(a, b);
  cout = net.add_and(a, b);
}

} // namespace

Network ripple_adder(int nbits, bool with_cin, bool with_cout) {
  Network net;
  std::vector<NodeId> a(static_cast<std::size_t>(nbits));
  std::vector<NodeId> b(static_cast<std::size_t>(nbits));
  // Interleaved PI order keeps the spec BDDs small for wide adders.
  for (int i = 0; i < nbits; ++i) {
    a[static_cast<std::size_t>(i)] = net.add_pi("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] = net.add_pi("b" + std::to_string(i));
  }
  NodeId carry = with_cin ? net.add_pi("cin") : Network::kConst0;
  std::vector<NodeId> sums(static_cast<std::size_t>(nbits));
  for (int i = 0; i < nbits; ++i) {
    NodeId s, c;
    if (carry == Network::kConst0)
      half_adder(net, a[static_cast<std::size_t>(i)],
                 b[static_cast<std::size_t>(i)], s, c);
    else
      full_adder(net, a[static_cast<std::size_t>(i)],
                 b[static_cast<std::size_t>(i)], carry, s, c);
    sums[static_cast<std::size_t>(i)] = s;
    carry = c;
  }
  for (int i = 0; i < nbits; ++i)
    net.add_po(sums[static_cast<std::size_t>(i)], "s" + std::to_string(i));
  if (with_cout) net.add_po(carry, "cout");
  return net;
}

Network array_multiplier(int n, int m, int out_bits) {
  if (out_bits > n + m)
    throw std::invalid_argument("array_multiplier: too many output bits");
  Network net;
  std::vector<NodeId> a, b;
  for (int i = 0; i < n; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int j = 0; j < m; ++j) b.push_back(net.add_pi("b" + std::to_string(j)));

  // Column-wise carry-save accumulation of the partial-product bits.
  std::vector<std::vector<NodeId>> columns(static_cast<std::size_t>(n + m));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      columns[static_cast<std::size_t>(i + j)].push_back(
          net.add_and(a[static_cast<std::size_t>(i)],
                      b[static_cast<std::size_t>(j)]));

  std::vector<NodeId> product;
  for (std::size_t col = 0; col < columns.size(); ++col) {
    auto& bits = columns[col];
    while (bits.size() > 1) {
      if (bits.size() >= 3) {
        NodeId s, c;
        full_adder(net, bits[0], bits[1], bits[2], s, c);
        bits.erase(bits.begin(), bits.begin() + 3);
        bits.push_back(s);
        if (col + 1 < columns.size()) columns[col + 1].push_back(c);
      } else {
        NodeId s, c;
        half_adder(net, bits[0], bits[1], s, c);
        bits.erase(bits.begin(), bits.begin() + 2);
        bits.push_back(s);
        if (col + 1 < columns.size()) columns[col + 1].push_back(c);
      }
    }
    product.push_back(bits.empty() ? Network::kConst0 : bits[0]);
  }
  for (int k = 0; k < out_bits; ++k)
    net.add_po(product[static_cast<std::size_t>(k)], "p" + std::to_string(k));
  return net;
}

Network squarer(int nbits, int out_bits) {
  // Square via the partial products of x*x: columns get a_i·a_j pairs once
  // (shifted up, since a_i a_j + a_j a_i = 2·a_i a_j) plus the diagonal
  // a_i·a_i = a_i.
  Network net;
  std::vector<NodeId> a;
  for (int i = 0; i < nbits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  std::vector<std::vector<NodeId>> columns(static_cast<std::size_t>(2 * nbits));
  for (int i = 0; i < nbits; ++i) {
    columns[static_cast<std::size_t>(2 * i)].push_back(
        a[static_cast<std::size_t>(i)]);
    for (int j = i + 1; j < nbits; ++j)
      columns[static_cast<std::size_t>(i + j + 1)].push_back(
          net.add_and(a[static_cast<std::size_t>(i)],
                      a[static_cast<std::size_t>(j)]));
  }
  std::vector<NodeId> out;
  for (std::size_t col = 0; col < columns.size(); ++col) {
    auto& bits = columns[col];
    while (bits.size() > 1) {
      NodeId s, c;
      if (bits.size() >= 3) {
        full_adder(net, bits[0], bits[1], bits[2], s, c);
        bits.erase(bits.begin(), bits.begin() + 3);
      } else {
        half_adder(net, bits[0], bits[1], s, c);
        bits.erase(bits.begin(), bits.begin() + 2);
      }
      bits.push_back(s);
      if (col + 1 < columns.size()) columns[col + 1].push_back(c);
    }
    out.push_back(bits.empty() ? Network::kConst0 : bits[0]);
  }
  for (int k = 0; k < out_bits; ++k)
    net.add_po(out[static_cast<std::size_t>(k)], "q" + std::to_string(k));
  return net;
}

Network ones_counter(int nbits) {
  Network net;
  std::vector<NodeId> xs;
  for (int i = 0; i < nbits; ++i) xs.push_back(net.add_pi("x" + std::to_string(i)));

  int out_bits = 0;
  while ((1 << out_bits) <= nbits) ++out_bits;

  // Accumulate bit by bit: count' = count + x (ripple increment gated by x).
  std::vector<NodeId> count(static_cast<std::size_t>(out_bits), Network::kConst0);
  for (const NodeId x : xs) {
    NodeId carry = x;
    for (int k = 0; k < out_bits; ++k) {
      const NodeId old = count[static_cast<std::size_t>(k)];
      NodeId s, c;
      if (old == Network::kConst0) {
        s = carry;
        c = Network::kConst0;
      } else {
        half_adder(net, old, carry, s, c);
      }
      count[static_cast<std::size_t>(k)] = s;
      carry = c;
      if (carry == Network::kConst0) break;
    }
  }
  for (int k = 0; k < out_bits; ++k)
    net.add_po(count[static_cast<std::size_t>(k)], "c" + std::to_string(k));
  return net;
}

Network weight_band(int nbits, int lo, int hi) {
  // Spec-level construction: truth table of the symmetric band. These are
  // small (<= 10 inputs).
  const TruthTable tt = TruthTable::from_function(nbits, [&](uint64_t m) {
    const int w = __builtin_popcountll(m);
    return w >= lo && w <= hi;
  });
  return network_from_tts({tt});
}

Network parity_chain(int nbits) {
  Network net;
  NodeId acc = Network::kConst0;
  for (int i = 0; i < nbits; ++i) {
    const NodeId x = net.add_pi("x" + std::to_string(i));
    acc = i == 0 ? x : net.add_xor(acc, x);
  }
  net.add_po(acc, "p");
  return net;
}

Network network_from_covers(const std::vector<Cover>& outputs, int num_inputs) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < num_inputs; ++i) pis.push_back(net.add_pi());
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const Cover& cov = outputs[o];
    assert(cov.nvars() == num_inputs);
    std::vector<NodeId> terms;
    for (const auto& cube : cov.cubes()) {
      std::vector<NodeId> lits;
      for (int v = 0; v < num_inputs; ++v) {
        if (cube.has_pos(v)) lits.push_back(pis[static_cast<std::size_t>(v)]);
        else if (cube.has_neg(v))
          lits.push_back(net.add_not(pis[static_cast<std::size_t>(v)]));
      }
      if (lits.empty()) terms.push_back(Network::kConst1);
      else if (lits.size() == 1) terms.push_back(lits[0]);
      else terms.push_back(net.add_gate(GateType::And, std::move(lits)));
    }
    NodeId root;
    if (terms.empty()) root = Network::kConst0;
    else if (terms.size() == 1) root = terms[0];
    else root = net.add_gate(GateType::Or, std::move(terms));
    net.add_po(root, "z" + std::to_string(o));
  }
  return net;
}

Network network_from_tts(const std::vector<TruthTable>& outputs) {
  assert(!outputs.empty());
  std::vector<Cover> covers;
  covers.reserve(outputs.size());
  // Canonical minterm covers are merged into a reasonable two-level form so
  // that SOP-based consumers (the baseline) start from a fair spec, like the
  // minimized PLAs the IWLS'91 set ships.
  for (const auto& tt : outputs)
    covers.push_back(merge_distance_one(Cover::from_truth_table(tt)));
  return network_from_covers(covers, outputs[0].nvars());
}

} // namespace rmsyn
