// Benchmark circuit generators reproducing the IWLS'91 set of Table 2.
//
// Circuits whose function is publicly known (the arithmetic ones: adders,
// multipliers, squarers, ones-counters, symmetric functions, parity, t481 —
// whose closed form the paper itself prints) are regenerated exactly from
// their arithmetic definitions. Circuits whose function is not public are
// replaced by documented, seeded synthetic stand-ins with identical I/O
// counts (see DESIGN.md §2 and each generator's comment); they exercise the
// same code paths and reproduce the paper's qualitative behaviour outside
// the arithmetic class.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "sop/cover.hpp"
#include "tt/truth_table.hpp"

namespace rmsyn {

struct Benchmark {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  bool arithmetic = false; ///< member of the paper's arithmetic subset
  bool exact = false;      ///< regenerated from the known function
  std::string description; ///< includes the substitution note when !exact
  Network spec;
};

/// All Table-2 circuit names, in the paper's row order.
const std::vector<std::string>& benchmark_names();

/// Builds one benchmark by name. Besides the Table-2 registry this accepts
/// the parameterized large-benchmark families "adderN" (N-bit ripple adder
/// with carry-in/out, 2 <= N <= 1024) and "multN" (NxN array multiplier
/// with the full 2N-bit product, 2 <= N <= 512), e.g. adder64, mult128.
/// Throws std::invalid_argument for unknown names.
Benchmark make_benchmark(const std::string& name);

/// True when `name` is in the registry or a valid parameterized family
/// name (see make_benchmark).
bool has_benchmark(const std::string& name);

// ---- building blocks shared by generators and tests ----

/// n-bit ripple-carry adder; inputs a[0..n), b[0..n) (LSB first) and an
/// optional carry-in; outputs n sum bits plus an optional carry-out.
Network ripple_adder(int nbits, bool with_cin, bool with_cout);

/// n x m array multiplier, LSB first, producing `out_bits` low product bits
/// (out_bits <= n+m).
Network array_multiplier(int n, int m, int out_bits);

/// n-bit squarer producing the low `out_bits` bits of x².
Network squarer(int nbits, int out_bits);

/// Counts the ones among n inputs into a ceil(log2(n+1))-bit binary output
/// (the rd53/rd73/rd84 family).
Network ones_counter(int nbits);

/// Symmetric threshold-band function: output 1 iff lo <= weight <= hi.
Network weight_band(int nbits, int lo, int hi);

/// n-input parity.
Network parity_chain(int nbits);

/// Builds a two-level network (one OR-of-ANDs node per output) from covers.
Network network_from_covers(const std::vector<Cover>& outputs,
                            int num_inputs);

/// Builds a two-level network from explicit truth tables.
Network network_from_tts(const std::vector<TruthTable>& outputs);

} // namespace rmsyn
