// The Table-2 circuit registry: name -> generator + metadata, in the
// paper's row order.
#include "benchgen/spec.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "benchgen/generators.hpp"

namespace rmsyn {

namespace {

struct Entry {
  bool arithmetic;
  bool exact;
  const char* description;
  std::function<Network()> build;
};

const std::vector<std::pair<std::string, Entry>>& registry() {
  static const std::vector<std::pair<std::string, Entry>> table = {
      {"5xp1",
       {true, false,
        "modeled as y = 5x+1 over 7 bits (10 outputs); original PLA not "
        "redistributable",
        [] { return bg::fivexp1(); }}},
      {"9sym",
       {true, true, "symmetric: 1 iff input weight in [3,6]",
        [] { return weight_band(9, 3, 6); }}},
      {"adr4",
       {true, true, "4-bit ripple adder, no carry-in, with carry-out",
        [] { return ripple_adder(4, false, true); }}},
      {"add6",
       {true, true, "6-bit ripple adder, no carry-in, with carry-out",
        [] { return ripple_adder(6, false, true); }}},
      {"addm4",
       {true, false, "modeled as (a*b + c) mod 256, a,b 4-bit (9/8)",
        [] { return bg::addm4(); }}},
      {"bcd-div3",
       {true, false,
        "BCD digit / 3 -> quotient+remainder, non-BCD codes map to 0",
        [] { return bg::bcd_div3(); }}},
      {"cc",
       {false, false, "synthetic random control logic (21/20), seeded",
        [] { return bg::cc(); }}},
      {"co14",
       {true, false, "modeled as equality of two 7-bit vectors (14/1)",
        [] { return bg::co14(); }}},
      {"cm163a",
       {false, false, "modeled on 74x163 counter next-state logic (16/5)",
        [] { return bg::counter163(); }}},
      {"cm82a",
       {true, true, "2-bit ripple adder with carry-in and carry-out (5/3)",
        [] { return ripple_adder(2, true, true); }}},
      {"cm85a",
       {false, false, "modeled on the 74x85 4-bit magnitude comparator (11/3)",
        [] { return bg::comparator85(); }}},
      {"cmb",
       {false, false, "modeled as an 8-bit bus checker (16/4)",
        [] { return bg::cmb(); }}},
      {"f2",
       {true, false, "modeled as a 2x2 multiplier (4/4)",
        [] { return bg::f2(); }}},
      {"f51m",
       {true, false, "modeled as y = (5x+1) mod 256 over 8 bits (8/8)",
        [] { return bg::f51m(); }}},
      {"frg1",
       {false, false, "synthetic random control logic (28/3), seeded",
        [] { return bg::frg1(); }}},
      {"i1",
       {false, false, "synthetic random control logic (25/13), seeded",
        [] { return bg::i1(); }}},
      {"i3",
       {false, false, "synthetic wide AND-OR selector plane (132/6)",
        [] { return bg::i3(); }}},
      {"i4",
       {false, false, "synthetic wide AND-OR selector plane (192/6)",
        [] { return bg::i4(); }}},
      {"i5",
       {false, false, "modeled as a 66-wide 2:1 mux bank (133/66)",
        [] { return bg::mux_bank66(); }}},
      {"m181",
       {false, false, "synthetic random control logic (15/9), seeded",
        [] { return bg::m181(); }}},
      {"majority",
       {true, true, "5-input majority", [] { return bg::majority5(); }}},
      {"misg",
       {false, false, "synthetic random control logic (56/23), seeded",
        [] { return bg::misg(); }}},
      {"mish",
       {false, false, "synthetic random control logic (94/34), seeded",
        [] { return bg::mish(); }}},
      {"mlp4",
       {true, true, "4x4 array multiplier (8/8)",
        [] { return array_multiplier(4, 4, 8); }}},
      {"my_adder",
       {true, true, "16-bit ripple adder with carry-in and carry-out (33/17)",
        [] { return ripple_adder(16, true, true); }}},
      {"parity",
       {true, true, "16-input parity", [] { return parity_chain(16); }}},
      {"pcle",
       {false, false, "modeled as registered-bus load glue (19/9)",
        [] { return bg::pcle(); }}},
      {"pcler8",
       {false, false, "modeled as registered-bus load glue (27/17)",
        [] { return bg::pcler8(); }}},
      {"pm1",
       {false, false, "synthetic random control logic (16/13), seeded",
        [] { return bg::pm1(); }}},
      {"radd",
       {true, true, "4-bit ripple adder, no carry-in, with carry-out (8/5)",
        [] { return ripple_adder(4, false, true); }}},
      {"rd53",
       {true, true, "ones counter: 5 inputs -> 3-bit count",
        [] { return ones_counter(5); }}},
      {"rd73",
       {true, true, "ones counter: 7 inputs -> 3-bit count",
        [] { return ones_counter(7); }}},
      {"rd84",
       {true, true, "ones counter: 8 inputs -> 4-bit count",
        [] { return ones_counter(8); }}},
      {"shift",
       {false, false, "modeled as a 16-bit barrel shifter, 3-bit amount (19/16)",
        [] { return bg::barrel_shift16(); }}},
      {"sqr6",
       {true, true, "6-bit squarer (6/12)", [] { return squarer(6, 12); }}},
      {"squar5",
       {true, false, "5-bit squarer, low 8 product bits (5/8)",
        [] { return squarer(5, 8); }}},
      {"sym10",
       {true, true, "symmetric: 1 iff input weight in [3,6]",
        [] { return weight_band(10, 3, 6); }}},
      {"t481",
       {true, true, "closed form printed in the paper (Example 1)",
        [] { return bg::t481(); }}},
      {"tcon",
       {false, false, "modeled as feed-through/gated wire bundle (17/16)",
        [] { return bg::tcon(); }}},
      {"xor10",
       {true, true, "10-input parity", [] { return parity_chain(10); }}},
      {"z4ml",
       {true, true, "3-bit ripple adder with carry-in and carry-out (7/4)",
        [] { return ripple_adder(3, true, true); }}},
  };
  return table;
}

/// Parses a parameterized family name "<prefix><N>" (e.g. adder64,
/// mult128). Returns N, or 0 when `name` is not of that shape or N is
/// outside [2, max_bits].
int parse_param(const std::string& name, const std::string& prefix,
                int max_bits) {
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0)
    return 0;
  int n = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return 0;
    n = n * 10 + (c - '0');
    if (n > max_bits) return 0;
  }
  return n >= 2 ? n : 0;
}

} // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& [name, entry] : registry()) v.push_back(name);
    return v;
  }();
  return names;
}

bool has_benchmark(const std::string& name) {
  for (const auto& [n, e] : registry())
    if (n == name) return true;
  return parse_param(name, "adder", 1024) != 0 ||
         parse_param(name, "mult", 512) != 0;
}

Benchmark make_benchmark(const std::string& name) {
  for (const auto& [n, e] : registry()) {
    if (n != name) continue;
    Benchmark b;
    b.name = n;
    b.arithmetic = e.arithmetic;
    b.exact = e.exact;
    b.description = e.description;
    b.spec = e.build();
    b.num_inputs = static_cast<int>(b.spec.pi_count());
    b.num_outputs = static_cast<int>(b.spec.po_count());
    return b;
  }
  // Parameterized large-benchmark families, not part of the Table-2 set:
  // adderN = N-bit ripple adder with carry-in/out, multN = NxN array
  // multiplier with the full 2N-bit product (mult128 is ~100k+ gates).
  if (const int n = parse_param(name, "adder", 1024)) {
    Benchmark b;
    b.name = name;
    b.arithmetic = b.exact = true;
    b.description = std::to_string(n) +
                    "-bit ripple adder with carry-in and carry-out (generated)";
    b.spec = ripple_adder(n, true, true);
    b.num_inputs = static_cast<int>(b.spec.pi_count());
    b.num_outputs = static_cast<int>(b.spec.po_count());
    return b;
  }
  if (const int n = parse_param(name, "mult", 512)) {
    Benchmark b;
    b.name = name;
    b.arithmetic = b.exact = true;
    b.description = std::to_string(n) + "x" + std::to_string(n) +
                    " array multiplier, full product (generated)";
    b.spec = array_multiplier(n, n, 2 * n);
    b.num_inputs = static_cast<int>(b.spec.pi_count());
    b.num_outputs = static_cast<int>(b.spec.po_count());
    return b;
  }
  throw std::invalid_argument("make_benchmark: unknown circuit " + name);
}

} // namespace rmsyn
