// Internal declarations of the per-circuit generators (see arith.cpp,
// misc.cpp, synthetic.cpp). Users go through make_benchmark() in spec.hpp.
#pragma once

#include "network/network.hpp"

namespace rmsyn::bg {

// misc.cpp — known functions.
Network t481();
Network comparator85();   // cm85a
Network counter163();     // cm163a
Network mux_bank66();     // i5
Network barrel_shift16(); // shift
Network fivexp1();        // 5xp1
Network f51m();
Network addm4();
Network f2();
Network bcd_div3();
Network co14();
Network majority5();
Network cmb();
Network tcon();

// synthetic.cpp — documented stand-ins for circuits with no public function.
Network cc();      // 21/20
Network i1();      // 25/13
Network i3();      // 132/6
Network i4();      // 192/6
Network m181();    // 15/9
Network misg();    // 56/23
Network mish();    // 94/34
Network pcle();    // 19/9
Network pcler8();  // 27/17
Network pm1();     // 16/13
Network frg1();    // 28/3

} // namespace rmsyn::bg
