// Generators for the non-adder known circuits: t481 (closed form printed in
// the paper), the 74x85 magnitude comparator behind cm85a, the 74x163
// counter next-state logic behind cm163a, the mux bank behind i5, the
// barrel shifter behind shift, and small arithmetic functions (5xp1, f51m,
// addm4, f2, bcd-div3, co14, majority, cmb).
#include "benchgen/spec.hpp"

#include <cassert>

namespace rmsyn {

namespace bg {

// t481 — the paper's Example 1 gives the function in closed form:
//   t481 = (v̄0v1 ⊕ v2v̄3)(v̄4v5 ⊕ (v̄6 + v7)) ⊕
//          ((v8 + v̄9) ⊕ v10v̄11)(v̄12v13 ⊕ v14v̄15)
Network t481() {
  Network net;
  std::vector<NodeId> v;
  for (int i = 0; i < 16; ++i) v.push_back(net.add_pi("v" + std::to_string(i)));
  const auto nv = [&](int i) { return net.add_not(v[static_cast<std::size_t>(i)]); };
  const auto pv = [&](int i) { return v[static_cast<std::size_t>(i)]; };

  const NodeId t1 = net.add_xor(net.add_and(nv(0), pv(1)), net.add_and(pv(2), nv(3)));
  const NodeId t2 = net.add_xor(net.add_and(nv(4), pv(5)), net.add_or(nv(6), pv(7)));
  const NodeId t3 = net.add_xor(net.add_or(pv(8), nv(9)), net.add_and(pv(10), nv(11)));
  const NodeId t4 = net.add_xor(net.add_and(nv(12), pv(13)), net.add_and(pv(14), nv(15)));
  net.add_po(net.add_xor(net.add_and(t1, t2), net.add_and(t3, t4)), "t481");
  return net;
}

// cm85a — modeled as the 74x85 4-bit magnitude comparator: operands a,b and
// cascade inputs (i_lt, i_eq, i_gt); outputs (o_lt, o_eq, o_gt).
Network comparator85() {
  Network net;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  const NodeId ilt = net.add_pi("ilt");
  const NodeId ieq = net.add_pi("ieq");
  const NodeId igt = net.add_pi("igt");

  // Bitwise equality, MSB-first cascading greater/less.
  std::vector<NodeId> eq(4);
  for (int i = 0; i < 4; ++i)
    eq[static_cast<std::size_t>(i)] =
        net.add_gate(GateType::Xnor, {a[static_cast<std::size_t>(i)],
                                      b[static_cast<std::size_t>(i)]});
  NodeId all_eq = eq[3];
  NodeId gt = net.add_and(a[3], net.add_not(b[3]));
  NodeId lt = net.add_and(net.add_not(a[3]), b[3]);
  for (int i = 2; i >= 0; --i) {
    const auto ii = static_cast<std::size_t>(i);
    gt = net.add_or(gt, net.add_and(all_eq, net.add_and(a[ii], net.add_not(b[ii]))));
    lt = net.add_or(lt, net.add_and(all_eq, net.add_and(net.add_not(a[ii]), b[ii])));
    all_eq = net.add_and(all_eq, eq[ii]);
  }
  net.add_po(net.add_or(gt, net.add_and(all_eq, igt)), "ogt");
  net.add_po(net.add_and(all_eq, ieq), "oeq");
  net.add_po(net.add_or(lt, net.add_and(all_eq, ilt)), "olt");
  return net;
}

// cm163a — modeled as the next-state logic of a 74x163 4-bit synchronous
// counter (q' and ripple-carry-out from q, parallel data, clear/load/enable
// controls), padded with three observability inputs so the I/O count matches
// the 16/5 of the original (which also exposes clock-related pins).
Network counter163() {
  Network net;
  std::vector<NodeId> q, d;
  for (int i = 0; i < 4; ++i) q.push_back(net.add_pi("q" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) d.push_back(net.add_pi("d" + std::to_string(i)));
  const NodeId clr_n = net.add_pi("clr_n");
  const NodeId load_n = net.add_pi("load_n");
  const NodeId ent = net.add_pi("ent");
  const NodeId enp = net.add_pi("enp");
  const NodeId g0 = net.add_pi("g0");
  const NodeId g1 = net.add_pi("g1");
  const NodeId g2 = net.add_pi("g2");
  net.add_pi("g3"); // present in the pin count, unused by the logic

  const NodeId en = net.add_and(ent, enp);
  // Incremented value: q + en (ripple).
  NodeId carry = en;
  std::vector<NodeId> inc(4);
  for (int i = 0; i < 4; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    inc[ii] = net.add_xor(q[ii], carry);
    carry = net.add_and(q[ii], carry);
  }
  for (int i = 0; i < 4; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    // q' = clr_n · (load_n ? inc : d), with one observability input mixed in
    // to keep the interface width faithful.
    const NodeId loaded = net.add_or(net.add_and(load_n, inc[ii]),
                                     net.add_and(net.add_not(load_n), d[ii]));
    NodeId next = net.add_and(clr_n, loaded);
    if (i == 0) next = net.add_xor(next, net.add_and(g0, g1));
    net.add_po(next, "nq" + std::to_string(i));
  }
  const NodeId q_all = net.add_gate(
      GateType::And, {q[0], q[1], q[2], q[3]});
  net.add_po(net.add_and(ent, net.add_and(q_all, net.add_not(g2))), "rco");
  return net;
}

// i5 — modeled as a 66-wide 2:1 multiplexer bank (1 select + 2x66 data =
// 133 inputs, 66 outputs), which reproduces the paper's 264-literal tie.
Network mux_bank66() {
  Network net;
  const NodeId sel = net.add_pi("sel");
  std::vector<NodeId> a, b;
  for (int i = 0; i < 66; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 66; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  const NodeId nsel = net.add_not(sel);
  for (int i = 0; i < 66; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    net.add_po(net.add_or(net.add_and(sel, a[ii]), net.add_and(nsel, b[ii])),
               "y" + std::to_string(i));
  }
  return net;
}

// shift — a 16-bit logical barrel shifter with a 3-bit shift amount
// (16 + 3 = 19 inputs, 16 outputs).
Network barrel_shift16() {
  Network net;
  std::vector<NodeId> d;
  for (int i = 0; i < 16; ++i) d.push_back(net.add_pi("d" + std::to_string(i)));
  std::vector<NodeId> s;
  for (int i = 0; i < 3; ++i) s.push_back(net.add_pi("s" + std::to_string(i)));

  std::vector<NodeId> cur = d;
  for (int stage = 0; stage < 3; ++stage) {
    const int amount = 1 << stage;
    const NodeId sel = s[static_cast<std::size_t>(stage)];
    const NodeId nsel = net.add_not(sel);
    std::vector<NodeId> next(16);
    for (int i = 0; i < 16; ++i) {
      const NodeId shifted =
          i >= amount ? cur[static_cast<std::size_t>(i - amount)]
                      : Network::kConst0;
      const auto ii = static_cast<std::size_t>(i);
      if (shifted == Network::kConst0) next[ii] = net.add_and(nsel, cur[ii]);
      else
        next[ii] = net.add_or(net.add_and(sel, shifted),
                              net.add_and(nsel, cur[ii]));
    }
    cur = std::move(next);
  }
  for (int i = 0; i < 16; ++i)
    net.add_po(cur[static_cast<std::size_t>(i)], "y" + std::to_string(i));
  return net;
}

// 5xp1 — modeled as y = 5·x + 1 over a 7-bit input (10 output bits; the
// maximum value 5·127+1 = 636 fits exactly). Substitution: the original PLA
// is not redistributable here; this keeps the "small multiply-add" character
// suggested by the name and the 7/10 interface.
Network fivexp1() {
  const int n = 7, out_bits = 10;
  std::vector<TruthTable> tts;
  for (int k = 0; k < out_bits; ++k) {
    tts.push_back(TruthTable::from_function(
        n, [&](uint64_t x) { return ((5 * x + 1) >> k) & 1; }));
  }
  return network_from_tts(tts);
}

// f51m — modeled as y = (5·x + 1) mod 256 over an 8-bit input (8/8).
Network f51m() {
  const int n = 8, out_bits = 8;
  std::vector<TruthTable> tts;
  for (int k = 0; k < out_bits; ++k) {
    tts.push_back(TruthTable::from_function(
        n, [&](uint64_t x) { return ((5 * x + 1) >> k) & 1; }));
  }
  return network_from_tts(tts);
}

// addm4 — modeled as (a·b + c) mod 256 for 4-bit a, b and a carry input
// (9 inputs, 8 outputs): a multiply-add, matching the "adder/multiplier"
// flavor of the name.
Network addm4() {
  std::vector<TruthTable> tts;
  for (int k = 0; k < 8; ++k) {
    tts.push_back(TruthTable::from_function(9, [&](uint64_t x) {
      const uint64_t a = x & 0xF, b = (x >> 4) & 0xF, c = (x >> 8) & 1;
      return ((a * b + c) >> k) & 1;
    }));
  }
  return network_from_tts(tts);
}

// f2 — modeled as a 2x2 multiplier (4/4).
Network f2() { return array_multiplier(2, 2, 4); }

// bcd-div3 — BCD digit divided by three: quotient (2 bits) and remainder
// (2 bits); non-BCD codes map to 0 (4/4).
Network bcd_div3() {
  std::vector<TruthTable> tts;
  for (int k = 0; k < 4; ++k) {
    tts.push_back(TruthTable::from_function(4, [&](uint64_t x) {
      if (x > 9) return false;
      const uint64_t q = x / 3, r = x % 3;
      const uint64_t word = q | (r << 2);
      return ((word >> k) & 1) != 0;
    }));
  }
  return network_from_tts(tts);
}

// co14 — modeled as the equality test of two 7-bit vectors (14/1): an
// XNOR-reduction, the "checking" circuit class the paper targets.
Network co14() {
  Network net;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 7; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 7; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  std::vector<NodeId> eqs;
  for (int i = 0; i < 7; ++i)
    eqs.push_back(net.add_gate(
        GateType::Xnor,
        {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]}));
  net.add_po(net.add_gate(GateType::And, std::move(eqs)), "eq");
  return net;
}

// majority — 5-input majority (5/1).
Network majority5() {
  const TruthTable tt = TruthTable::from_function(
      5, [](uint64_t m) { return __builtin_popcountll(m) >= 3; });
  return network_from_tts({tt});
}

// cmb — modeled as an 8-bit bus checker (16/4): equality, all-zero flags of
// both operands, and bus parity.
Network cmb() {
  Network net;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 8; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  std::vector<NodeId> eqs, az, bz, par;
  for (int i = 0; i < 8; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    eqs.push_back(net.add_gate(GateType::Xnor, {a[ii], b[ii]}));
    az.push_back(net.add_not(a[ii]));
    bz.push_back(net.add_not(b[ii]));
    par.push_back(net.add_xor(a[ii], b[ii]));
  }
  net.add_po(net.add_gate(GateType::And, std::move(eqs)), "eq");
  net.add_po(net.add_gate(GateType::And, std::move(az)), "a_zero");
  net.add_po(net.add_gate(GateType::And, std::move(bz)), "b_zero");
  net.add_po(net.add_gate(GateType::Xor, std::move(par)), "parity");
  return net;
}

// tcon — modeled as 8 feed-through wires interleaved with 8 gated wires
// (17/16): the wiring-dominated circuit class where the paper reports 0%.
Network tcon() {
  Network net;
  std::vector<NodeId> x;
  for (int i = 0; i < 16; ++i) x.push_back(net.add_pi("x" + std::to_string(i)));
  const NodeId en = net.add_pi("en");
  for (int i = 0; i < 16; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    if (i % 2 == 0) net.add_po(x[ii], "y" + std::to_string(i));
    else net.add_po(net.add_and(en, x[ii]), "y" + std::to_string(i));
  }
  return net;
}

} // namespace bg

} // namespace rmsyn
