// Documented synthetic stand-ins for IWLS'91 circuits whose function is not
// publicly specified. Each generator is deterministic (fixed seed) and
// matches the original's I/O count; the structures follow the published
// circuit class (random control logic, registered-bus glue, wide
// AND-OR selector planes). See DESIGN.md §2 for the substitution rationale.
#include "benchgen/generators.hpp"

#include "benchgen/spec.hpp"
#include "sop/cover.hpp"
#include "util/rng.hpp"

namespace rmsyn::bg {

namespace {

/// Random control-logic cover: `ncubes` cubes of `lits` literals each, with
/// supports drawn from a window of the input space to create the sharing
/// that real control logic exhibits.
Cover random_cover(Rng& rng, int nvars, int ncubes, int lits, int window_base,
                   int window_size) {
  Cover cov(nvars);
  for (int c = 0; c < ncubes; ++c) {
    Cube cube(nvars);
    for (int l = 0; l < lits; ++l) {
      const int v =
          (window_base + static_cast<int>(rng.below(
                             static_cast<uint64_t>(window_size)))) % nvars;
      if (rng.flip()) cube.add_pos(v);
      else cube.add_neg(v);
    }
    cov.add(std::move(cube));
  }
  return cov;
}

Network random_control(uint64_t seed, int nins, int nouts, int ncubes,
                       int lits, int window) {
  Rng rng(seed);
  std::vector<Cover> outs;
  outs.reserve(static_cast<std::size_t>(nouts));
  for (int o = 0; o < nouts; ++o) {
    const int base = nouts > 1 ? (o * nins) / nouts : 0;
    outs.push_back(random_cover(rng, nins, ncubes, lits, base, window));
  }
  return network_from_covers(outs, nins);
}

} // namespace

// The paper reports near-ties on cc/m181/pm1 and mild outcomes on the rest
// of the control-logic set, i.e. the real circuits' FPRM forms are
// manageable. The stand-ins therefore use short cubes (wide-cube random SOP
// would be maximally FPRM-hostile and invert the observed behaviour).
Network cc() { return random_control(/*seed=*/0xCC, 21, 20, 3, 2, 8); }

Network i1() { return random_control(0x11, 25, 13, 4, 2, 10); }

// i3/i4 — wide AND-OR selector planes: each output owns a block of inputs
// and ORs two-literal products inside it.
Network i3() {
  Network net;
  std::vector<NodeId> x;
  for (int i = 0; i < 132; ++i) x.push_back(net.add_pi());
  for (int o = 0; o < 6; ++o) {
    std::vector<NodeId> terms;
    for (int k = 0; k < 11; ++k) {
      const auto p = static_cast<std::size_t>(o * 22 + 2 * k);
      terms.push_back(net.add_and(x[p], x[p + 1]));
    }
    net.add_po(net.add_gate(GateType::Or, std::move(terms)),
               "z" + std::to_string(o));
  }
  return net;
}

Network i4() {
  Network net;
  std::vector<NodeId> x;
  for (int i = 0; i < 192; ++i) x.push_back(net.add_pi());
  for (int o = 0; o < 6; ++o) {
    std::vector<NodeId> terms;
    for (int k = 0; k < 16; ++k) {
      const auto p = static_cast<std::size_t>(o * 32 + 2 * k);
      terms.push_back(net.add_and(x[p], x[p + 1]));
    }
    net.add_po(net.add_gate(GateType::Or, std::move(terms)),
               "z" + std::to_string(o));
  }
  return net;
}

Network m181() { return random_control(0x181, 15, 9, 4, 2, 8); }

Network misg() { return random_control(0x519, 56, 23, 3, 2, 9); }

Network mish() { return random_control(0x514, 94, 34, 3, 2, 9); }

// pcle/pcler8 — registered-bus glue: per-bit load multiplexers with a clear
// control, plus status outputs.
Network pcle() {
  Network net;
  std::vector<NodeId> d, q;
  for (int i = 0; i < 8; ++i) d.push_back(net.add_pi("d" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) q.push_back(net.add_pi("q" + std::to_string(i)));
  const NodeId en = net.add_pi("en");
  const NodeId clr_n = net.add_pi("clr_n");
  net.add_pi("spare");
  const NodeId nen = net.add_not(en);
  for (int i = 0; i < 8; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const NodeId mux =
        net.add_or(net.add_and(en, d[ii]), net.add_and(nen, q[ii]));
    net.add_po(net.add_and(clr_n, mux), "y" + std::to_string(i));
  }
  net.add_po(en, "en_out");
  return net;
}

Network pcler8() {
  Network net;
  std::vector<NodeId> d, q;
  for (int i = 0; i < 12; ++i) d.push_back(net.add_pi("d" + std::to_string(i)));
  for (int i = 0; i < 12; ++i) q.push_back(net.add_pi("q" + std::to_string(i)));
  const NodeId en = net.add_pi("en");
  const NodeId clr_n = net.add_pi("clr_n");
  const NodeId mode = net.add_pi("mode");
  const NodeId nen = net.add_not(en);
  std::vector<NodeId> ys;
  for (int i = 0; i < 12; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const NodeId mux =
        net.add_or(net.add_and(en, d[ii]), net.add_and(nen, q[ii]));
    const NodeId y = net.add_and(clr_n, mux);
    ys.push_back(y);
    net.add_po(y, "y" + std::to_string(i));
  }
  net.add_po(net.add_and(mode, en), "st0");
  net.add_po(net.add_or(mode, clr_n), "st1");
  net.add_po(net.add_and(ys[0], ys[1]), "st2");
  net.add_po(net.add_or(ys[2], ys[3]), "st3");
  net.add_po(en, "st4");
  return net;
}

Network pm1() { return random_control(0x901, 16, 13, 3, 2, 7); }

// frg1's real function is FPRM-friendly (the paper reports a 27%
// improvement on it); a random-SOP stand-in would invert that behaviour,
// so the substitute mixes the checking-logic shapes the flow is built for:
// a masked parity, a threshold flag and a half-against-half comparison.
Network frg1() {
  Network net;
  std::vector<NodeId> x;
  for (int i = 0; i < 28; ++i) x.push_back(net.add_pi());
  // out0: parity of the low 12 inputs, gated by two controls.
  NodeId par = x[0];
  for (int i = 1; i < 12; ++i) par = net.add_xor(par, x[static_cast<std::size_t>(i)]);
  net.add_po(net.add_and(par, net.add_or(x[12], x[13])), "z0");
  // out1: at-least-two-of-four flag over inputs 14..17, ANDed with 18.
  const NodeId p01 = net.add_and(x[14], x[15]);
  const NodeId p23 = net.add_and(x[16], x[17]);
  const NodeId p02 = net.add_and(x[14], x[16]);
  const NodeId p13 = net.add_and(x[15], x[17]);
  const NodeId th = net.add_gate(GateType::Or, {p01, p23, p02, p13});
  net.add_po(net.add_and(th, x[18]), "z1");
  // out2: equality of inputs 19..23 against 23..27 (overlapping halves).
  std::vector<NodeId> eqs;
  for (int i = 0; i < 4; ++i)
    eqs.push_back(net.add_gate(GateType::Xnor,
                               {x[static_cast<std::size_t>(19 + i)],
                                x[static_cast<std::size_t>(24 + i)]}));
  net.add_po(net.add_gate(GateType::And, std::move(eqs)), "z2");
  return net;
}

} // namespace rmsyn::bg
