// Kernel computation (Brayton-McMullen): the kernels of a cover are its
// cube-free primary divisors; common kernels across nodes expose the
// multi-cube subexpressions the extraction pass shares.
#pragma once

#include <vector>

#include "sop/cover.hpp"

namespace rmsyn {

struct Kernel {
  Cover kernel;   ///< cube-free divisor
  Cube co_kernel; ///< cube such that kernel = F / co_kernel
};

/// All kernels of F (including F itself when cube-free). `max_kernels`
/// bounds the enumeration on pathological covers.
std::vector<Kernel> kernels(const Cover& f, std::size_t max_kernels = 4096);

/// Level-0 kernels only (kernels with no kernels other than themselves) —
/// cheaper, used by quick factoring.
std::vector<Kernel> level0_kernels(const Cover& f, std::size_t max_kernels = 256);

} // namespace rmsyn
