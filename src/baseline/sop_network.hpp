// The SIS network model: a DAG of nodes, each carrying a sum-of-products
// cover. This is the data structure the conventional (Brayton-McMullen /
// MIS) synthesis baseline operates on, mirroring how SIS scripts transform
// node covers with simplify / eliminate / extract / factor.
//
// All covers live in one global variable space: variable v < num_pis() is
// primary input v; variable num_pis()+k is the output of internal node k.
// This makes substitution (eliminate) and cross-node extraction plain cover
// algebra without per-node variable remapping.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "sop/cover.hpp"

namespace rmsyn {

class SopNetwork {
public:
  explicit SopNetwork(int num_pis);

  /// Builds the SIS view of a gate network: one SOP node per logic gate
  /// (the way SIS reads a multilevel BLIF), with single-literal nodes
  /// (buffers/inverters) collapsed.
  static SopNetwork from_network(const Network& net);

  int num_pis() const { return num_pis_; }
  int num_vars() const { return num_pis_ + static_cast<int>(covers_.size()); }
  std::size_t node_count() const { return covers_.size(); }

  /// Adds an internal node with the given cover (over the current variable
  /// space or narrower); returns its variable id.
  int add_node(Cover cover);

  const Cover& cover_of(int var) const;
  void set_cover(int var, Cover cover);
  bool is_pi(int var) const { return var < num_pis_; }

  const std::vector<int>& po_vars() const { return pos_; }
  const std::string& po_name(std::size_t i) const { return po_names_[i]; }
  void add_po(int var, std::string name);

  /// Variable ids (PIs and nodes) referenced by the cover of `var`.
  std::vector<int> fanins(int var) const;
  /// Number of cover references to each variable (POs count once).
  std::vector<int> fanout_counts() const;

  /// Internal nodes in topological order (fanins first). Only live nodes
  /// (reachable from POs) are returned.
  std::vector<int> topo_nodes() const;

  /// Total SOP literal count over live nodes (the SIS `print_stats` lits).
  int literal_count() const;

  /// Substitutes node `var`'s cover into every reader and removes the node
  /// (SIS eliminate of a single node). POs are never collapsed. Returns
  /// false — leaving the network unchanged — when the node's complement
  /// exceeds the internal effort bound.
  bool collapse_node(int var);

  /// SOP-literal growth that collapse_node(var) would cause:
  /// Σ_readers (lits after - lits before) - lits(var). This is the SIS
  /// eliminate "value" of the node (literals saved by keeping it). Returns
  /// INT_MAX when the complement effort bound is exceeded.
  int collapse_growth(int var) const;

  /// Collapses the whole network to two-level form (one cover per PO over
  /// PIs only), the shape of the IWLS'91 PLA benchmarks. Returns false —
  /// leaving the network partially collapsed but consistent — when any
  /// intermediate cover would exceed `max_cubes`. Callers wanting
  /// all-or-nothing semantics should flatten a copy.
  bool flatten(std::size_t max_cubes);

  /// Converts to a gate network, factoring each node cover into AND/OR/NOT
  /// gates (literal factoring, the quick_factor shape).
  Network to_network() const;

private:
  void widen(Cover& c) const;

  int num_pis_ = 0;
  std::vector<Cover> covers_;       // per internal node
  std::vector<bool> dead_;          // collapsed/unreferenced nodes
  std::vector<int> pos_;
  std::vector<std::string> po_names_;
};

} // namespace rmsyn
