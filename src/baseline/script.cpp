#include "baseline/script.hpp"

#include <stdexcept>

#include "util/errors.hpp"

#include "baseline/extract.hpp"
#include "baseline/factor.hpp"
#include "core/redundancy.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "sop/minimize.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

namespace {

void simplify_nodes(SopNetwork& sn, ResourceGovernor* gov) {
  for (const int n : sn.topo_nodes()) {
    if (gov != nullptr && !gov->poll()) return; // keep the prefix
    const Cover& c = sn.cover_of(n);
    if (c.size() <= 1) continue;
    sn.set_cover(n, espresso_lite(c));
  }
}

/// SIS-style eliminate: collapse a node into its readers when keeping it
/// does not pay off. The value of a node is the SOP-literal growth its
/// collapse would cause (what keeping it saves); nodes with value <=
/// threshold are collapsed. This is what keeps XOR-chain nodes alive —
/// substituting an XOR cover into an XOR reader doubles the cubes — while
/// wires, buffers and single-use AND/OR fragments are absorbed, exactly
/// like `eliminate` in script.rugged.
void eliminate(SopNetwork& sn, int threshold, ResourceGovernor* gov) {
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    const auto fanouts = sn.fanout_counts();
    for (const int n : sn.topo_nodes()) {
      if (gov != nullptr && !gov->poll()) return; // keep the prefix
      const bool is_po = [&] {
        for (const int po : sn.po_vars())
          if (po == n) return true;
        return false;
      }();
      if (is_po) continue;
      if (fanouts[static_cast<std::size_t>(n)] == 0) continue;
      const Cover& c = sn.cover_of(n);
      if (c.size() > 16 || c.nvars() == 0) continue; // keep complements cheap
      const int value = sn.collapse_growth(n);
      if (value <= threshold && sn.collapse_node(n)) {
        changed = true;
        break; // fanout counts and growth values are stale; recompute
      }
    }
  }
}

} // namespace

Network baseline_synthesize(const Network& spec, const BaselineOptions& opt,
                            BaselineReport* report) {
  Stopwatch sw;
  BaselineReport rep;
  ResourceGovernor* gov = opt.governor;
  StageBreakdown* const sb = &rep.stages;
  const auto out_of_budget = [&] { return gov != nullptr && gov->exhausted(); };

  SopNetwork sn = SopNetwork::from_network(decompose2(strash(spec)));

  if (opt.flatten_to_two_level && !out_of_budget()) {
    obs::ScopedStage stage(gov, sb, "baseline-flatten");
    SopNetwork flat = sn;
    if (flat.flatten(opt.flatten_cube_cap)) sn = std::move(flat);
  }

  // sweep; simplify — espresso on every node cover.
  {
    obs::ScopedStage stage(gov, sb, "baseline-simplify");
    simplify_nodes(sn, gov);
  }
  rep.sop_lits_initial = sn.literal_count();

  // eliminate; the first pass uses a negative threshold (only nodes whose
  // removal is free), as script.rugged does, then extraction runs on the
  // flattened-enough network.
  if (!out_of_budget()) {
    obs::ScopedStage stage(gov, sb, "baseline-eliminate");
    eliminate(sn, opt.eliminate_value, gov);
    simplify_nodes(sn, gov);
  }

  // gkx/gcx loop.
  if (!out_of_budget()) {
    obs::ScopedStage stage(gov, sb, "baseline-extract");
    ExtractOptions ex;
    ex.governor = gov;
    for (std::size_t round = 0;
         round < opt.extract_rounds && !out_of_budget(); ++round) {
      const int k = extract_kernels(sn, ex);
      const int c = extract_cubes(sn, ex);
      rep.nodes_extracted += k + c;
      if (k + c == 0) break;
    }
    simplify_nodes(sn, gov);
  }
  rep.sop_lits_final = sn.literal_count();

  // Factor every node into gates.
  Network net;
  {
    obs::ScopedStage stage(gov, sb, "baseline-factor");
    net = strash(sn.to_network());
  }

  // red_removal: redundant-wire elimination on the gate network. The
  // generic engine is reused with no FPRM forms (random-pattern filtering +
  // exact confirmation); on an AND/OR network the XOR phases are no-ops.
  // When the budget already died, the pass gets a fresh slice only through
  // the caller's ladder (run_flow); here it is simply skipped.
  if (opt.run_redundancy_removal && !out_of_budget()) {
    obs::ScopedStage stage(gov, sb, "baseline-redundancy");
    RedundancyOptions ro;
    ro.observability_pass = false;
    ro.governor = gov;
    net = remove_xor_redundancy(net, {}, ro, nullptr);
  }
  net = strash(net);

  if (opt.verify) {
    // Undecided is acceptable for a degraded run (every pass prefix is
    // equivalence-preserving and red_removal self-confirms its rewrites);
    // a decided mismatch still throws.
    if (gov != nullptr && gov->exhausted()) (void)gov->grant_fallback();
    obs::ScopedStage stage(gov, sb, "baseline-verify");
    const auto check = check_equivalence(spec, net, 0xC0FFEE, gov);
    if (check.decided && !check.equivalent)
      throw RmsynError(ErrorCode::VerifyMismatch,
                       "baseline_synthesize: result not equivalent: " +
                           check.reason);
  }

  rep.status = (gov != nullptr && gov->trip_kind() != TripKind::None)
                   ? FlowStatus::degraded(gov->trip_stage(),
                                          to_string(gov->trip_kind()),
                                          error_code_for(gov->trip_kind()))
                   : FlowStatus::ok();
  rep.seconds = sw.seconds();
  rep.stats = network_stats(net);
  rep.governor_polls = gov != nullptr ? gov->steps() : 0;
  if (report != nullptr) *report = rep;
  return net;
}

} // namespace rmsyn
