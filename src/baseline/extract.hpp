// Shared-divisor extraction across the node covers of a SopNetwork — the
// gkx (kernel) and gcx (cube) passes of MIS/SIS, implemented as greedy
// best-divisor loops.
#pragma once

#include "baseline/sop_network.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct ExtractOptions {
  std::size_t max_kernels_per_node = 64;
  std::size_t max_rounds = 64;
  int min_value = 1; ///< minimum literal saving for an extraction to fire
  /// Polled per node inside each round; extraction stops at the last
  /// completed substitution (any prefix of rounds is a valid network).
  ResourceGovernor* governor = nullptr;
};

/// Repeatedly extracts the best-valued common kernel as a new node.
/// Returns the number of nodes created.
int extract_kernels(SopNetwork& sn, const ExtractOptions& opt = {});

/// Repeatedly extracts the best-valued common 2-literal cube as a new node.
/// Returns the number of nodes created.
int extract_cubes(SopNetwork& sn, const ExtractOptions& opt = {});

} // namespace rmsyn
