#include "baseline/kernels.hpp"

#include <functional>

#include "baseline/divide.hpp"
#include "sop/minimize.hpp"

namespace rmsyn {

namespace {

// Literal index space: 2*v for positive, 2*v+1 for negative.
int literal_count_in(const Cover& f, int lit) {
  const int v = lit / 2;
  const bool pos = (lit % 2) == 0;
  int n = 0;
  for (const auto& c : f.cubes())
    if (pos ? c.has_pos(v) : c.has_neg(v)) ++n;
  return n;
}

Cube lit_cube(int nvars, int lit) {
  Cube c(nvars);
  if (lit % 2 == 0) c.add_pos(lit / 2); else c.add_neg(lit / 2);
  return c;
}

void kernels_rec(const Cover& g, const Cube& co, int min_lit,
                 std::vector<Kernel>& out, std::size_t max_kernels,
                 bool level0_only) {
  if (out.size() >= max_kernels) return;
  const int nlits = 2 * g.nvars();
  bool has_sub_kernel = false;
  for (int lit = min_lit; lit < nlits; ++lit) {
    if (literal_count_in(g, lit) < 2) continue;
    auto [q, r] = divide_by_cube(g, lit_cube(g.nvars(), lit));
    (void)r;
    if (q.size() < 2) continue;
    // Make the quotient cube-free.
    const Cube common = largest_common_cube(q);
    // Skip if the common cube contains a literal smaller than `lit`
    // (that kernel is found through the smaller literal).
    bool smaller = false;
    for (int l2 = 0; l2 < lit; ++l2) {
      const int v = l2 / 2;
      if ((l2 % 2 == 0) ? common.has_pos(v) : common.has_neg(v)) {
        smaller = true;
        break;
      }
    }
    if (smaller) continue;
    Cover kern(q.nvars());
    for (const auto& c : q.cubes()) kern.add(c.divide(common));
    Cube new_co = co.intersect(lit_cube(g.nvars(), lit)).intersect(common);
    has_sub_kernel = true;
    kernels_rec(kern, new_co, lit + 1, out, max_kernels, level0_only);
    if (!level0_only && out.size() < max_kernels)
      out.push_back({kern, new_co});
  }
  if (level0_only && !has_sub_kernel && g.size() >= 2 && out.size() < max_kernels)
    out.push_back({g, co});
}

} // namespace

std::vector<Kernel> kernels(const Cover& f, std::size_t max_kernels) {
  std::vector<Kernel> out;
  if (f.size() < 2) return out;
  const Cube common = largest_common_cube(f);
  Cover base(f.nvars());
  for (const auto& c : f.cubes()) base.add(c.divide(common));
  kernels_rec(base, common, 0, out, max_kernels, /*level0_only=*/false);
  // The cube-free F itself is a kernel.
  if (out.size() < max_kernels) out.push_back({base, common});
  return out;
}

std::vector<Kernel> level0_kernels(const Cover& f, std::size_t max_kernels) {
  std::vector<Kernel> out;
  if (f.size() < 2) return out;
  const Cube common = largest_common_cube(f);
  Cover base(f.nvars());
  for (const auto& c : f.cubes()) base.add(c.divide(common));
  kernels_rec(base, common, 0, out, max_kernels, /*level0_only=*/true);
  if (out.empty()) out.push_back({base, common});
  return out;
}

} // namespace rmsyn
