#include "baseline/sop_network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "baseline/factor.hpp"
#include "sop/minimize.hpp"

namespace rmsyn {

SopNetwork::SopNetwork(int num_pis) : num_pis_(num_pis) {}

SopNetwork SopNetwork::from_network(const Network& net) {
  SopNetwork sn(static_cast<int>(net.pi_count()));
  // var id of each gate-network node once assigned; -1 = not yet.
  std::vector<int> var_of(net.node_count(), -1);
  std::vector<bool> negated(net.node_count(), false);
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    var_of[net.pis()[i]] = static_cast<int>(i);

  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi) continue;
    if (t == GateType::Const0 || t == GateType::Const1) continue;

    const auto lit_of = [&](NodeId f) -> std::pair<int, bool> {
      // (var, complemented?)
      if (f == Network::kConst0 || f == Network::kConst1)
        return {-static_cast<int>(f) - 1, false}; // encode constants below
      return {var_of[f], negated[f]};
    };

    if (t == GateType::Buf || t == GateType::Not) {
      const NodeId f = net.fanins(n)[0];
      if (f == Network::kConst0 || f == Network::kConst1) {
        // Constant node: materialize as a constant cover.
        const bool value = (f == Network::kConst1) != (t == GateType::Not);
        var_of[n] = sn.add_node(Cover::constant(sn.num_vars(), value));
        negated[n] = false;
      } else {
        var_of[n] = var_of[f];
        negated[n] = negated[f] != (t == GateType::Not);
      }
      continue;
    }

    // Build the gate's local cover over the global variable space.
    const int width = sn.num_vars();
    Cover cov(width);
    const auto add_lit = [&](Cube& cube, NodeId f, bool phase) -> bool {
      // Returns false when the cube is killed by a constant.
      if (f == Network::kConst0 || f == Network::kConst1) {
        const bool value = (f == Network::kConst1) != !phase;
        return value; // constant literal: true keeps cube, false kills it
      }
      const auto [v, neg] = lit_of(f);
      const bool pos = phase != neg;
      if (pos) cube.add_pos(v); else cube.add_neg(v);
      return true;
    };

    const auto& fi = net.fanins(n);
    bool complemented_out = false;
    switch (t) {
      case GateType::And: case GateType::Nand: {
        Cube cube(width);
        bool alive = true;
        for (const NodeId f : fi) alive = alive && add_lit(cube, f, true);
        if (alive) cov.add(std::move(cube));
        complemented_out = t == GateType::Nand;
        break;
      }
      case GateType::Or: case GateType::Nor: {
        for (const NodeId f : fi) {
          Cube cube(width);
          if (add_lit(cube, f, true)) cov.add(std::move(cube));
        }
        complemented_out = t == GateType::Nor;
        break;
      }
      case GateType::Xor: case GateType::Xnor: {
        if (fi.size() != 2)
          throw std::invalid_argument(
              "SopNetwork::from_network: decompose XOR to 2 inputs first");
        Cube c1(width), c2(width);
        bool a1 = add_lit(c1, fi[0], true) && add_lit(c1, fi[1], false);
        bool a2 = add_lit(c2, fi[0], false) && add_lit(c2, fi[1], true);
        if (a1) cov.add(std::move(c1));
        if (a2) cov.add(std::move(c2));
        complemented_out = t == GateType::Xnor;
        break;
      }
      default:
        throw std::logic_error("SopNetwork::from_network: bad gate");
    }
    if (complemented_out) cov = single_cube_containment(cov.complement());
    var_of[n] = sn.add_node(std::move(cov));
    negated[n] = false;
  }

  for (std::size_t i = 0; i < net.po_count(); ++i) {
    const NodeId po = net.po(i);
    int v;
    if (po == Network::kConst0 || po == Network::kConst1) {
      v = sn.add_node(Cover::constant(sn.num_vars(), po == Network::kConst1));
    } else if (negated[po] || net.type(po) == GateType::Pi) {
      // POs must reference a node variable in true phase; wrap.
      Cover wrap(sn.num_vars());
      Cube cube(sn.num_vars());
      if (negated[po]) cube.add_neg(var_of[po]); else cube.add_pos(var_of[po]);
      wrap.add(std::move(cube));
      v = sn.add_node(std::move(wrap));
    } else {
      v = var_of[po];
    }
    sn.add_po(v, net.po_name(i));
  }
  return sn;
}

int SopNetwork::add_node(Cover cover) {
  const int var = num_vars();
  if (cover.nvars() < var + 1) cover.resize_vars(var + 1);
  covers_.push_back(std::move(cover));
  dead_.push_back(false);
  // Keep every cover in the same (widened) variable space so cover algebra
  // across nodes never mixes widths.
  for (auto& c : covers_)
    if (c.nvars() < num_vars()) c.resize_vars(num_vars());
  return var;
}

const Cover& SopNetwork::cover_of(int var) const {
  assert(!is_pi(var));
  return covers_[static_cast<std::size_t>(var - num_pis_)];
}

void SopNetwork::set_cover(int var, Cover cover) {
  assert(!is_pi(var));
  if (cover.nvars() < num_vars()) cover.resize_vars(num_vars());
  covers_[static_cast<std::size_t>(var - num_pis_)] = std::move(cover);
}

void SopNetwork::add_po(int var, std::string name) {
  pos_.push_back(var);
  po_names_.push_back(std::move(name));
}

std::vector<int> SopNetwork::fanins(int var) const {
  const BitVec sup = cover_of(var).support();
  std::vector<int> out;
  for (std::size_t v = sup.first_set(); v != BitVec::npos; v = sup.next_set(v + 1))
    out.push_back(static_cast<int>(v));
  return out;
}

std::vector<int> SopNetwork::fanout_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(num_vars()), 0);
  const auto nodes = topo_nodes();
  for (const int n : nodes)
    for (const int f : fanins(n)) ++counts[static_cast<std::size_t>(f)];
  for (const int po : pos_) ++counts[static_cast<std::size_t>(po)];
  return counts;
}

std::vector<int> SopNetwork::topo_nodes() const {
  std::vector<uint8_t> state(static_cast<std::size_t>(num_vars()), 0);
  std::vector<int> order;
  const std::function<void(int)> visit = [&](int v) {
    if (is_pi(v) || state[static_cast<std::size_t>(v)] == 2) return;
    if (state[static_cast<std::size_t>(v)] == 1)
      throw std::logic_error("SopNetwork: cycle");
    state[static_cast<std::size_t>(v)] = 1;
    for (const int f : fanins(v)) visit(f);
    state[static_cast<std::size_t>(v)] = 2;
    order.push_back(v);
  };
  for (const int po : pos_) visit(po);
  return order;
}

int SopNetwork::literal_count() const {
  int lits = 0;
  for (const int n : topo_nodes()) lits += cover_of(n).literal_count();
  return lits;
}

int SopNetwork::collapse_growth(int var) const {
  assert(!is_pi(var));
  const Cover& g = cover_of(var);
  const auto gbar_opt = g.complement_bounded(200'000);
  if (!gbar_opt) return std::numeric_limits<int>::max();
  const Cover gbar = single_cube_containment(*gbar_opt);
  int growth = -g.literal_count();
  for (const auto& f : covers_) {
    bool reads = false;
    for (const auto& cube : f.cubes())
      if (cube.has_var(var)) { reads = true; break; }
    if (!reads) continue;
    const Cover pos_part = f.cofactor(var, true);
    const Cover neg_part = f.cofactor(var, false);
    const Cover merged =
        single_cube_containment((pos_part & g) | (neg_part & gbar));
    growth += merged.literal_count() - f.literal_count();
  }
  return growth;
}

bool SopNetwork::collapse_node(int var) {
  assert(!is_pi(var));
  if (std::find(pos_.begin(), pos_.end(), var) != pos_.end()) return false;
  const Cover g = cover_of(var);
  const auto gbar_opt = g.complement_bounded(1'000'000);
  if (!gbar_opt) return false;
  const Cover gbar = single_cube_containment(*gbar_opt);
  for (std::size_t k = 0; k < covers_.size(); ++k) {
    Cover& f = covers_[k];
    bool reads = false;
    for (const auto& cube : f.cubes())
      if (cube.has_var(var)) { reads = true; break; }
    if (!reads) continue;
    Cover pos_part = f.cofactor(var, true);
    Cover neg_part = f.cofactor(var, false);
    // f = v·f_v + v̄·f_v̄ with v := g.
    Cover merged = (pos_part & g) | (neg_part & gbar);
    // The cofactor parts overlap on cubes without v; (A|A) duplicates are
    // cleaned by containment.
    covers_[k] = single_cube_containment(merged);
  }
  // Mark as dead by emptying the cover (it is no longer referenced).
  covers_[static_cast<std::size_t>(var - num_pis_)] = Cover(num_vars());
  dead_[static_cast<std::size_t>(var - num_pis_)] = true;
  return true;
}

bool SopNetwork::flatten(std::size_t max_cubes) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int n : topo_nodes()) {
      bool is_po = false;
      for (const int po : pos_)
        if (po == n) { is_po = true; break; }
      if (is_po) continue;
      if (!collapse_node(n)) return false;
      changed = true;
      // Abort when a cover blows past the cap.
      for (const auto& c : covers_)
        if (c.size() > max_cubes) return false;
      break; // topo list is stale after a collapse
    }
  }
  // Fully flat iff every PO cover depends on PIs only.
  for (const int po : pos_)
    for (const int f : fanins(po))
      if (!is_pi(f)) return false;
  return true;
}

Network SopNetwork::to_network() const {
  Network net;
  std::vector<NodeId> var_nodes(static_cast<std::size_t>(num_vars()),
                                Network::kConst0);
  for (int i = 0; i < num_pis_; ++i)
    var_nodes[static_cast<std::size_t>(i)] = net.add_pi();
  for (const int n : topo_nodes()) {
    var_nodes[static_cast<std::size_t>(n)] =
        build_factored(net, cover_of(n), var_nodes);
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const int v = pos_[i];
    const NodeId node = is_pi(v) ? var_nodes[static_cast<std::size_t>(v)]
                                 : var_nodes[static_cast<std::size_t>(v)];
    net.add_po(node, po_names_[i]);
  }
  return net;
}

void SopNetwork::widen(Cover& c) const {
  if (c.nvars() < num_vars()) c.resize_vars(num_vars());
}

} // namespace rmsyn
