// Algebraic (weak) division — the workhorse of Brayton-McMullen
// factorization: F = Q·D + R with Q the largest quotient such that Q·D ⊆ F
// cube-by-cube (literals treated as opaque symbols; no Boolean reasoning).
#pragma once

#include "sop/cover.hpp"

namespace rmsyn {

struct DivisionResult {
  Cover quotient;
  Cover remainder;
};

/// Divides F by a single cube.
DivisionResult divide_by_cube(const Cover& f, const Cube& d);

/// Divides F by a multi-cube divisor.
DivisionResult divide(const Cover& f, const Cover& d);

/// Largest cube dividing every cube of F (its common cube).
Cube largest_common_cube(const Cover& f);

/// True when no single literal appears in every cube (the cover is
/// "cube-free"); kernels are exactly the cube-free primary divisors.
bool is_cube_free(const Cover& f);

} // namespace rmsyn
