// Factoring of SOP covers into AND/OR/NOT gate trees (the SIS quick_factor
// shape: recursive division by the most frequent literal, after pulling the
// largest common cube).
#pragma once

#include <vector>

#include "network/network.hpp"
#include "sop/cover.hpp"

namespace rmsyn {

/// Builds gates computing `cover` inside `net`. `var_nodes[v]` is the gate
/// node carrying cover variable v. Returns the root node.
NodeId build_factored(Network& net, const Cover& cover,
                      const std::vector<NodeId>& var_nodes);

/// Number of literals in the factored form of `cover` (counts without
/// building a network; used by eliminate's value function).
int factored_literals(const Cover& cover);

} // namespace rmsyn
