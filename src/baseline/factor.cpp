#include "baseline/factor.hpp"

#include "baseline/divide.hpp"
#include "baseline/kernels.hpp"

namespace rmsyn {

namespace {

/// Most frequent literal (2v = positive, 2v+1 = negative), or -1 when no
/// literal appears twice.
int best_literal(const Cover& f) {
  const int n = f.nvars();
  std::vector<int> cnt(static_cast<std::size_t>(2 * n), 0);
  for (const auto& c : f.cubes()) {
    for (int v = 0; v < n; ++v) {
      if (c.has_pos(v)) ++cnt[static_cast<std::size_t>(2 * v)];
      else if (c.has_neg(v)) ++cnt[static_cast<std::size_t>(2 * v + 1)];
    }
  }
  int best = -1, best_cnt = 1;
  for (int l = 0; l < 2 * n; ++l) {
    if (cnt[static_cast<std::size_t>(l)] > best_cnt) {
      best_cnt = cnt[static_cast<std::size_t>(l)];
      best = l;
    }
  }
  return best;
}

Cube lit_cube(int nvars, int lit) {
  Cube c(nvars);
  if (lit % 2 == 0) c.add_pos(lit / 2); else c.add_neg(lit / 2);
  return c;
}

class FactorBuilder {
public:
  FactorBuilder(Network& net, const std::vector<NodeId>& var_nodes)
      : net_(&net), vars_(&var_nodes) {}

  NodeId lit_node(int v, bool positive) {
    const NodeId base = (*vars_)[static_cast<std::size_t>(v)];
    return positive ? base : net_->add_not(base);
  }

  NodeId cube_node(const Cube& c) {
    std::vector<NodeId> leaves;
    for (int v = 0; v < c.nvars(); ++v) {
      if (c.has_pos(v)) leaves.push_back(lit_node(v, true));
      else if (c.has_neg(v)) leaves.push_back(lit_node(v, false));
    }
    if (leaves.empty()) return Network::kConst1;
    if (leaves.size() == 1) return leaves[0];
    return net_->add_gate(GateType::And, std::move(leaves));
  }

  NodeId build(const Cover& f) {
    if (f.empty()) return Network::kConst0;
    if (f.has_universal_cube()) return Network::kConst1;
    if (f.size() == 1) return cube_node(f.cubes()[0]);

    // Pull the common cube first: F = C · F'.
    const Cube common = largest_common_cube(f);
    if (!common.is_universal()) {
      Cover base(f.nvars());
      for (const auto& c : f.cubes()) base.add(c.divide(common));
      const NodeId inner = build(base);
      const NodeId cc = cube_node(common);
      if (inner == Network::kConst1) return cc;
      return net_->add_and(cc, inner);
    }

    // good_factor: prefer a multi-cube kernel divisor when one saves
    // literals (F = Q·D + R with D a level-0 kernel); otherwise fall back
    // to division by the most frequent literal (quick_factor).
    if (f.size() >= 3) {
      const auto ks = level0_kernels(f, 16);
      const Kernel* best_k = nullptr;
      int best_value = 0;
      for (const auto& k : ks) {
        if (k.kernel.size() < 2 || k.kernel.size() >= f.size()) continue;
        const auto [q, r] = divide(f, k.kernel);
        if (q.size() < 2) continue; // single-quotient: literal division does it
        const int saved = f.literal_count() -
                          (q.literal_count() + k.kernel.literal_count() +
                           r.literal_count());
        if (saved > best_value) {
          best_value = saved;
          best_k = &k;
        }
      }
      if (best_k != nullptr) {
        const auto [q, r] = divide(f, best_k->kernel);
        const NodeId qn = build(q);
        const NodeId dn = build(best_k->kernel);
        NodeId left;
        if (qn == Network::kConst1) left = dn;
        else if (dn == Network::kConst1) left = qn;
        else left = net_->add_and(qn, dn);
        if (r.empty()) return left;
        return net_->add_or(left, build(r));
      }
    }

    const int lit = best_literal(f);
    if (lit < 0) {
      // No sharing left: plain OR of cube ANDs.
      std::vector<NodeId> terms;
      for (const auto& c : f.cubes()) terms.push_back(cube_node(c));
      return net_->add_gate(GateType::Or, std::move(terms));
    }
    auto [q, r] = divide_by_cube(f, lit_cube(f.nvars(), lit));
    const NodeId ln = lit_node(lit / 2, lit % 2 == 0);
    const NodeId qn = build(q);
    const NodeId left = qn == Network::kConst1 ? ln : net_->add_and(ln, qn);
    if (r.empty()) return left;
    return net_->add_or(left, build(r));
  }

private:
  Network* net_;
  const std::vector<NodeId>* vars_;
};

int count_rec(const Cover& f);

int count_cube(const Cube& c) { return c.literal_count(); }

int count_rec(const Cover& f) {
  if (f.empty() || f.has_universal_cube()) return 0;
  if (f.size() == 1) return count_cube(f.cubes()[0]);
  const Cube common = largest_common_cube(f);
  if (!common.is_universal()) {
    Cover base(f.nvars());
    for (const auto& c : f.cubes()) base.add(c.divide(common));
    return count_cube(common) + count_rec(base);
  }
  const int lit = best_literal(f);
  if (lit < 0) {
    int n = 0;
    for (const auto& c : f.cubes()) n += count_cube(c);
    return n;
  }
  auto [q, r] = divide_by_cube(f, lit_cube(f.nvars(), lit));
  return 1 + count_rec(q) + (r.empty() ? 0 : count_rec(r));
}

} // namespace

NodeId build_factored(Network& net, const Cover& cover,
                      const std::vector<NodeId>& var_nodes) {
  FactorBuilder fb(net, var_nodes);
  return fb.build(cover);
}

int factored_literals(const Cover& cover) { return count_rec(cover); }

} // namespace rmsyn
