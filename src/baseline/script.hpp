// The conventional-synthesis baseline: a SIS-style script over the SOP
// network model (the paper compares against the best of SIS `rugged` /
// `boolean` / `algebraic`, each followed by `red_removal`). The pass
// sequence mirrors those scripts: sweep + simplify (espresso on node
// covers), eliminate (value-based collapsing), iterated kernel + cube
// extraction, node factoring into AND/OR/NOT gates, and redundant-wire
// removal on the gate network.
//
// Everything here is pure AND/OR factorization — like the SIS algebraic
// engine, it can only produce XOR structures by accident, which is exactly
// the weakness on arithmetic functions the paper exploits.
#pragma once

#include "baseline/sop_network.hpp"
#include "network/network.hpp"
#include "network/stats.hpp"
#include "obs/stage.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct BaselineOptions {
  bool run_redundancy_removal = true; ///< the paper's `red_removal` step
  int eliminate_value = 0;  ///< collapse nodes whose keep-value <= this
  std::size_t extract_rounds = 8;
  bool verify = true; ///< check equivalence against the spec
  /// Collapse the spec to two-level SOP first (the IWLS'91 PLA shape the
  /// paper fed to SIS) unless any cover would exceed the cube cap — then
  /// the spec is consumed as a multilevel network, like the circuits of the
  /// IWLS multilevel set (my_adder, the i-series, ...).
  bool flatten_to_two_level = true;
  /// Cap chosen so the IWLS two-level benchmarks (t481 ~481 cubes, xor10
  /// 512, the arithmetic PLAs) flatten, while parity-like exponential
  /// covers bail out early and stay multilevel.
  std::size_t flatten_cube_cap = 1500;
  /// Resource budget. Every prefix of the SOP script is an equivalent
  /// network, so on a trip the remaining optimization passes are skipped
  /// and the current network is factored and returned (status degraded).
  ResourceGovernor* governor = nullptr;
};

struct BaselineReport {
  NetworkStats stats;
  double seconds = 0.0;
  int sop_lits_initial = 0; ///< SOP literals after simplify
  int sop_lits_final = 0;   ///< SOP literals after extraction
  int nodes_extracted = 0;
  /// ok or degraded:<stage>; the script cannot fail (any pass prefix is a
  /// valid result), so Failed never originates here.
  FlowStatus status;
  /// Wall-clock per baseline-* stage (names match the governor stack).
  StageBreakdown stages;
  /// Cooperative governor polls consumed (0 when no governor attached).
  uint64_t governor_polls = 0;
};

/// Runs the baseline script on a specification network.
Network baseline_synthesize(const Network& spec, const BaselineOptions& opt = {},
                            BaselineReport* report = nullptr);

} // namespace rmsyn
