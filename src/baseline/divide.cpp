#include "baseline/divide.hpp"

#include <algorithm>
#include <cassert>

namespace rmsyn {

DivisionResult divide_by_cube(const Cover& f, const Cube& d) {
  DivisionResult r{Cover(f.nvars()), Cover(f.nvars())};
  for (const auto& c : f.cubes()) {
    if (c.divisible_by(d)) r.quotient.add(c.divide(d));
    else r.remainder.add(c);
  }
  return r;
}

DivisionResult divide(const Cover& f, const Cover& d) {
  assert(!d.empty());
  if (d.size() == 1) return divide_by_cube(f, d.cubes()[0]);

  // Q = ∩_i (F / d_i); R = F - Q·D.
  Cover q = divide_by_cube(f, d.cubes()[0]).quotient;
  for (std::size_t i = 1; i < d.size() && !q.empty(); ++i) {
    const Cover qi = divide_by_cube(f, d.cubes()[i]).quotient;
    Cover inter(f.nvars());
    for (const auto& a : q.cubes())
      for (const auto& b : qi.cubes())
        if (a == b) inter.add(a);
    q = std::move(inter);
  }
  DivisionResult r{q, Cover(f.nvars())};
  if (q.empty()) {
    r.remainder = f;
    return r;
  }
  // Product cubes Q·D, removed from F to form the remainder.
  std::vector<Cube> products;
  for (const auto& a : q.cubes())
    for (const auto& b : d.cubes())
      products.push_back(a.intersect(b));
  for (const auto& c : f.cubes()) {
    if (std::find(products.begin(), products.end(), c) == products.end())
      r.remainder.add(c);
  }
  return r;
}

Cube largest_common_cube(const Cover& f) {
  assert(!f.empty());
  Cube common = f.cubes()[0];
  for (std::size_t i = 1; i < f.size(); ++i) {
    const Cube& c = f.cubes()[i];
    Cube next(f.nvars());
    for (int v = 0; v < f.nvars(); ++v) {
      if (common.has_pos(v) && c.has_pos(v)) next.add_pos(v);
      else if (common.has_neg(v) && c.has_neg(v)) next.add_neg(v);
    }
    common = next;
  }
  return common;
}

bool is_cube_free(const Cover& f) {
  if (f.size() <= 1) return false;
  return largest_common_cube(f).is_universal();
}

} // namespace rmsyn
