#include "baseline/extract.hpp"

#include <map>
#include <string>

#include "baseline/divide.hpp"
#include "baseline/kernels.hpp"
#include "sop/minimize.hpp"

namespace rmsyn {

namespace {

std::string canon(const Cover& c) {
  std::vector<std::string> rows;
  rows.reserve(c.size());
  for (const auto& cube : c.cubes()) rows.push_back(cube.to_string());
  std::sort(rows.begin(), rows.end());
  std::string s;
  for (auto& r : rows) {
    s += r;
    s += '|';
  }
  return s;
}

/// Rewrites node `var` as Q·w + R where w is the new divisor variable.
bool substitute_divisor(SopNetwork& sn, int var, const Cover& divisor, int w) {
  const auto [q, r] = divide(sn.cover_of(var), divisor);
  if (q.empty()) return false;
  Cover next(sn.num_vars());
  Cube wlit(sn.num_vars());
  wlit.add_pos(w);
  for (const auto& qc : q.cubes()) next.add(qc.intersect(wlit));
  for (const auto& rc : r.cubes()) next.add(rc);
  sn.set_cover(var, single_cube_containment(next));
  return true;
}

} // namespace

int extract_kernels(SopNetwork& sn, const ExtractOptions& opt) {
  int created = 0;
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    // Gather kernels of all live nodes, grouped by canonical form.
    struct Agg {
      Cover kernel{0};
      std::vector<int> nodes;
      int saving = 0; ///< Σ per-instance literal savings
      int lits = 0;
    };
    std::map<std::string, Agg> agg;
    bool budget_ok = true;
    for (const int n : sn.topo_nodes()) {
      if (opt.governor != nullptr && !opt.governor->poll()) {
        budget_ok = false;
        break;
      }
      const Cover& f = sn.cover_of(n);
      if (f.size() < 2) continue;
      for (const auto& k : kernels(f, opt.max_kernels_per_node)) {
        if (k.kernel.size() < 2) continue;
        auto& a = agg[canon(k.kernel)];
        if (a.nodes.empty()) {
          a.kernel = k.kernel;
          a.lits = k.kernel.literal_count();
        }
        // One instance = (node, co-kernel): the cubes co·K (|K| copies of
        // the co-kernel plus the kernel literals) collapse to co·w.
        const int co_lits = k.co_kernel.literal_count();
        a.saving += static_cast<int>(k.kernel.size()) * co_lits + a.lits -
                    co_lits - 1;
        if (a.nodes.empty() || a.nodes.back() != n) a.nodes.push_back(n);
      }
    }
    if (!budget_ok) break; // partial kernel census: don't extract from it
    // Best kernel by total literal saving, net of the new node's own cost.
    const Agg* best = nullptr;
    int best_value = opt.min_value - 1;
    for (const auto& [key, a] : agg) {
      const int value = a.saving - a.lits;
      if (value > best_value) {
        best_value = value;
        best = &a;
      }
    }
    if (best == nullptr) break;
    Cover divisor = best->kernel;
    const std::vector<int> targets = best->nodes;
    const int w = sn.add_node(divisor);
    divisor.resize_vars(sn.num_vars());
    bool any = false;
    for (const int n : targets) any |= substitute_divisor(sn, n, divisor, w);
    if (!any) break;
    ++created;
  }
  return created;
}

int extract_cubes(SopNetwork& sn, const ExtractOptions& opt) {
  int created = 0;
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    // Count occurrences of literal pairs across all cubes of all nodes.
    // Literal index: 2v (positive) / 2v+1 (negative).
    std::map<std::pair<int, int>, int> pair_count;
    const auto nodes = sn.topo_nodes();
    bool budget_ok = true;
    for (const int n : nodes) {
      if (opt.governor != nullptr && !opt.governor->poll()) {
        budget_ok = false;
        break;
      }
      for (const auto& cube : sn.cover_of(n).cubes()) {
        std::vector<int> lits;
        for (int v = 0; v < cube.nvars(); ++v) {
          if (cube.has_pos(v)) lits.push_back(2 * v);
          else if (cube.has_neg(v)) lits.push_back(2 * v + 1);
        }
        for (std::size_t i = 0; i < lits.size(); ++i)
          for (std::size_t j = i + 1; j < lits.size(); ++j)
            ++pair_count[{lits[i], lits[j]}];
      }
    }
    if (!budget_ok) break; // partial pair census: don't extract from it
    std::pair<int, int> best{-1, -1};
    int best_cnt = 2; // need at least 3 occurrences to save literals
    for (const auto& [p, cnt] : pair_count) {
      if (cnt > best_cnt) {
        best_cnt = cnt;
        best = p;
      }
    }
    if (best.first < 0) break;

    Cube divisor(sn.num_vars());
    if (best.first % 2 == 0) divisor.add_pos(best.first / 2);
    else divisor.add_neg(best.first / 2);
    if (best.second % 2 == 0) divisor.add_pos(best.second / 2);
    else divisor.add_neg(best.second / 2);

    Cover div_cover(sn.num_vars());
    div_cover.add(divisor);
    const int w = sn.add_node(div_cover);
    divisor.resize_vars(sn.num_vars());

    bool any = false;
    for (const int n : nodes) {
      if (n == w) continue;
      const Cover& f = sn.cover_of(n);
      bool touches = false;
      Cover next(sn.num_vars());
      Cube wlit(sn.num_vars());
      wlit.add_pos(w);
      for (const auto& cube : f.cubes()) {
        if (cube.divisible_by(divisor)) {
          next.add(cube.divide(divisor).intersect(wlit));
          touches = true;
        } else {
          next.add(cube);
        }
      }
      if (touches) {
        sn.set_cover(n, next);
        any = true;
      }
    }
    if (!any) break;
    ++created;
  }
  return created;
}

} // namespace rmsyn
