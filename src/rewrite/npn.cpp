#include "rewrite/npn.hpp"

#include <algorithm>
#include <cassert>

namespace rmsyn {
namespace rw {

namespace {

/// All 24 permutations of {0,1,2,3} in lexicographic order.
struct PermTable {
  std::array<std::array<uint8_t, 4>, 24> perms;
  /// src[p][neg][y] = the minterm of f whose value lands at minterm y of
  /// the transformed table (out_neg excluded).
  std::array<std::array<std::array<uint8_t, 16>, 16>, 24> src;

  PermTable() {
    std::array<uint8_t, 4> p = {0, 1, 2, 3};
    int idx = 0;
    do {
      perms[idx] = p;
      for (int neg = 0; neg < 16; ++neg) {
        for (int y = 0; y < 16; ++y) {
          int x = 0;
          for (int j = 0; j < 4; ++j) {
            const int bit = ((y >> p[j]) & 1) ^ ((neg >> j) & 1);
            x |= bit << j;
          }
          src[idx][neg][y] = static_cast<uint8_t>(x);
        }
      }
      ++idx;
    } while (std::next_permutation(p.begin(), p.end()));
  }
};

const PermTable& perm_table() {
  static const PermTable t;
  return t;
}

inline uint16_t gather(uint16_t f, const std::array<uint8_t, 16>& src) {
  uint16_t r = 0;
  for (int y = 0; y < 16; ++y) r |= static_cast<uint16_t>((f >> src[y]) & 1) << y;
  return r;
}

} // namespace

uint16_t tt16_erase_var(uint16_t t, int var, int nvars) {
  assert(var >= 0 && var < nvars && nvars <= 4);
  uint16_t r = 0;
  const int rows = 1 << (nvars - 1);
  for (int m = 0; m < rows; ++m) {
    const int lo = m & ((1 << var) - 1);
    const int hi = m >> var;
    const int srcm = lo | (hi << (var + 1)); // erased variable reads 0
    r |= static_cast<uint16_t>((t >> srcm) & 1) << m;
  }
  return r;
}

uint16_t tt16_extend(uint16_t t, int nvars) {
  assert(nvars >= 0 && nvars <= 4);
  int rows = 1 << nvars;
  uint32_t r = t & ((rows == 16) ? 0xFFFFu : ((1u << rows) - 1));
  while (rows < 16) {
    r |= r << rows;
    rows <<= 1;
  }
  return static_cast<uint16_t>(r);
}

uint16_t npn_apply(uint16_t f, const NpnTransform& t) {
  uint16_t r = 0;
  for (int y = 0; y < 16; ++y) {
    int x = 0;
    for (int j = 0; j < 4; ++j) {
      const int bit = ((y >> t.perm[j]) & 1) ^ ((t.neg >> j) & 1);
      x |= bit << j;
    }
    r |= static_cast<uint16_t>((f >> x) & 1) << y;
  }
  return t.out_neg ? static_cast<uint16_t>(~r) : r;
}

NpnResult npn_canonicalize(uint16_t f) {
  const PermTable& pt = perm_table();
  NpnResult best;
  best.canon = 0xFFFF;
  bool first = true;
  for (int p = 0; p < 24; ++p) {
    for (int neg = 0; neg < 16; ++neg) {
      const uint16_t img = gather(f, pt.src[p][neg]);
      for (int on = 0; on < 2; ++on) {
        const uint16_t c = on ? static_cast<uint16_t>(~img) : img;
        if (first || c < best.canon) {
          first = false;
          best.canon = c;
          best.xform.perm = pt.perms[p];
          best.xform.neg = static_cast<uint8_t>(neg);
          best.xform.out_neg = (on != 0);
        }
      }
    }
  }
  return best;
}

std::size_t npn_class_count() {
  std::vector<bool> seen(65536, false);
  std::size_t count = 0;
  NpnCache cache;
  for (uint32_t f = 0; f < 65536; ++f) {
    const uint16_t c = cache.canonicalize(static_cast<uint16_t>(f)).canon;
    if (!seen[c]) {
      seen[c] = true;
      ++count;
    }
  }
  return count;
}

NpnResult NpnCache::canonicalize(uint16_t f) {
  uint64_t& slot = slots_[f];
  if (slot == ~uint64_t{0}) {
    const NpnResult r = npn_canonicalize(f);
    // canon(16) | perm digits(8: 2 bits each) | neg(4) | out_neg(1)
    uint64_t enc = r.canon;
    for (int j = 0; j < 4; ++j)
      enc |= static_cast<uint64_t>(r.xform.perm[j]) << (16 + 2 * j);
    enc |= static_cast<uint64_t>(r.xform.neg) << 24;
    enc |= static_cast<uint64_t>(r.xform.out_neg ? 1 : 0) << 28;
    slot = enc;
  }
  NpnResult r;
  r.canon = static_cast<uint16_t>(slot & 0xFFFF);
  for (int j = 0; j < 4; ++j)
    r.xform.perm[j] = static_cast<uint8_t>((slot >> (16 + 2 * j)) & 3);
  r.xform.neg = static_cast<uint8_t>((slot >> 24) & 0xF);
  r.xform.out_neg = ((slot >> 28) & 1) != 0;
  return r;
}

} // namespace rw
} // namespace rmsyn
