// The rewrite database: one precomputed optimal AND/XOR structure per NPN
// class of 4-input functions (222 classes).
//
// Structures are expression DAGs over 2-input AND and XOR nodes with free
// complement edges, costed in the paper's units (stats.hpp): a 2-input
// AND-equivalent costs 1, a 2-input XOR costs 3, inverters are free. OR /
// NAND / NOR fall out of AND plus complements, so AND+XOR is a complete
// basis and the stored cost is exactly what the structure adds to a
// network's `gates2` when nothing is shared.
//
// Generation (generate()) is a level-synchronous Dijkstra over all 65536
// 16-bit truth tables: constants and projections seed cost 0, complements
// close every level for free, and level c combines finalized pairs with
// cost a+b+1 by AND and a+b+3 by XOR (XOR first, so parity-like classes
// keep their XOR shape on cost ties). When every class representative is
// finalized, one expression DAG per representative is extracted from the
// `how` links with truth-table-level deduplication — so the recorded cost
// is the DAG cost, never worse than the Dijkstra tree cost.
//
// On-disk format (data/rewrite_db_k4.txt, written by `rmsyn_cli
// rewrite-dbgen`): '#' comments, then one line per class
//
//   <canon-hex4> <cost> <nnodes> { A|X <lit-a> <lit-b> }*nnodes <root-lit>
//
// with literal = (ref << 1) | complemented; ref 0 = constant 0, refs 1..4 =
// canonical inputs y0..y3, refs >= 5 = the listed nodes in order. load()
// re-evaluates every entry against its class function and throws
// RmsynError(ParseError) on any mismatch, so a corrupt database can never
// reach the replacement engine.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace rmsyn {
namespace rw {

/// Database literal: (ref << 1) | complemented. Ref 0 is constant 0, refs
/// 1..4 the canonical inputs y0..y3, refs >= 5 internal nodes in order.
using DbLit = uint16_t;

inline constexpr DbLit db_lit(unsigned ref, bool neg) {
  return static_cast<DbLit>((ref << 1) | (neg ? 1 : 0));
}
inline constexpr unsigned db_ref(DbLit l) { return l >> 1; }
inline constexpr bool db_neg(DbLit l) { return (l & 1) != 0; }

struct DbNode {
  bool is_xor = false;
  DbLit a = 0;
  DbLit b = 0;
};

struct DbEntry {
  uint16_t canon = 0;
  int cost = 0; ///< 2-input AND-equivalents of the DAG (XOR = 3, NOT free)
  std::vector<DbNode> nodes; ///< topologically ordered (operands precede)
  DbLit root = 0;
};

class RewriteDb {
public:
  /// Entry for a canonical representative, or null when `canon` is not
  /// canonical (lookups must canonicalize first; every class is covered).
  const DbEntry* lookup(uint16_t canon) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<DbEntry>& entries() const { return entries_; }

  /// Evaluates an entry's structure over explicit input tables (leaf i =
  /// the table fed to canonical input y_i). Returns the root's table.
  static uint16_t eval_entry(const DbEntry& e, const std::array<uint16_t, 4>& inputs);

  /// Builds the database from scratch (seconds of CPU; see header comment).
  static RewriteDb generate();

  /// Parses the on-disk format; throws RmsynError(ParseError) on malformed
  /// or functionally wrong entries.
  static RewriteDb load(std::istream& in);
  static RewriteDb load_file(const std::string& path);
  void save(std::ostream& out) const;

  /// Shared instance, resolved once: $RMSYN_REWRITE_DB if set, else
  /// rewrite_db_k4.txt under the build-time data directory, else generate().
  static const RewriteDb& instance();

private:
  void build_index();
  void validate() const;

  std::vector<DbEntry> entries_; ///< sorted by canon
  std::unordered_map<uint16_t, uint32_t> index_;
};

} // namespace rw
} // namespace rmsyn
