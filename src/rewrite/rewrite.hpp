// DAG-aware cut rewriting against the NPN rewrite database (DESIGN.md §13).
//
// Each pass over the network: (A) enumerate priority 4-cuts serially;
// (B) evaluate every candidate root in parallel over the FROZEN network —
// canonicalize each cut's function, look it up in the database, and score
// the best replacement by true gain (MFFC cost that dies minus new
// structure cost after structural sharing with existing nodes); (C) apply
// winners serially in topological order, re-validating each candidate
// against the current network, with a verify-then-commit protocol: exact
// 16-row truth-table pre-check, commit through rewrite_gate, incremental
// simulation signatures against the pass-start PO baseline, a local BDD
// check of the committed cone, and a structural revert on any mismatch.
//
// Determinism: phase B is a pure function per root of the frozen network
// (per-slot NPN caches only memoize), results are reduced in root index
// order, so `--jobs N` is bit-identical to serial. Governor polls run once
// per node/candidate; a trip unwinds the pass at the next boundary and
// leaves the network valid and equivalent (every already-applied
// replacement was individually verified).
#pragma once

#include <cstdint>
#include <string>

namespace rmsyn {

class Network;
class ThreadPool;
class ResourceGovernor;
struct SimStats;

namespace rw {

struct RewriteOptions {
  /// Priority cuts kept per node (excluding the trivial cut).
  int cut_limit = 8;
  /// Passes over the network; a pass with zero replacements stops early.
  int max_passes = 2;
  /// Random patterns for the incremental-simulation signature check.
  int sim_patterns = 256;
  uint64_t sim_seed = 0x5EEDC0DE;
  /// Explicit database file; empty = $RMSYN_REWRITE_DB, then the build-time
  /// data directory, then in-process generation (RewriteDb::instance()).
  std::string db_path;
  /// Candidate evaluation fans out over this pool (null = serial).
  ThreadPool* pool = nullptr;
  /// Budget; polled once per node / candidate. Null = unbudgeted.
  ResourceGovernor* governor = nullptr;
};

/// Counters surfaced as the rewrite.* metrics group on SynthReport/FlowRow.
/// Inline accumulate/empty so rmsyn_obs and rmsyn_flow can absorb the
/// struct header-only (the same deal BddStats/SimStats get).
struct RewriteStats {
  uint64_t passes = 0;
  uint64_t roots = 0;            ///< candidate root nodes considered
  uint64_t cuts_enumerated = 0;  ///< cuts kept across all enumerations
  uint64_t db_hits = 0;          ///< cut functions found in the database
  uint64_t candidates = 0;       ///< positive-gain replacements planned
  uint64_t stale_skips = 0;      ///< phase-C candidates invalidated by earlier commits
  uint64_t replacements = 0;     ///< replacements committed and verified
  uint64_t sim_rejects = 0;      ///< reverted by the simulation signature check
  uint64_t bdd_rejects = 0;      ///< reverted by the local BDD check
  uint64_t lits_before = 0;      ///< paper literals entering the first pass
  uint64_t lits_after = 0;       ///< paper literals after the last pass
  uint64_t gain_lits = 0;        ///< lits_before - lits_after (0 if negative)
  double cuts_seconds = 0.0;     ///< phase A wall time (cut enumeration)
  double eval_seconds = 0.0;     ///< phase B wall time (parallel evaluation)
  double apply_seconds = 0.0;    ///< phase C wall time (verify-then-commit)

  void accumulate(const RewriteStats& o) {
    passes += o.passes;
    roots += o.roots;
    cuts_enumerated += o.cuts_enumerated;
    db_hits += o.db_hits;
    candidates += o.candidates;
    stale_skips += o.stale_skips;
    replacements += o.replacements;
    sim_rejects += o.sim_rejects;
    bdd_rejects += o.bdd_rejects;
    lits_before += o.lits_before;
    lits_after += o.lits_after;
    gain_lits += o.gain_lits;
    cuts_seconds += o.cuts_seconds;
    eval_seconds += o.eval_seconds;
    apply_seconds += o.apply_seconds;
  }
  bool empty() const {
    return passes == 0 && roots == 0 && cuts_enumerated == 0 && db_hits == 0 &&
           candidates == 0 && stale_skips == 0 && replacements == 0 &&
           sim_rejects == 0 && bdd_rejects == 0 && lits_before == 0 &&
           lits_after == 0 && gain_lits == 0;
  }
};

/// Runs up to opt.max_passes rewriting passes in place. PIs, POs and their
/// order are untouched (roots are rewritten in place, never re-targeted).
/// `sim_out`, when given, accumulates the signature checker's SimStats.
RewriteStats rewrite_network(Network& net, const RewriteOptions& opt = {},
                             SimStats* sim_out = nullptr);

} // namespace rw
} // namespace rmsyn
