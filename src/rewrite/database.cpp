#include "rewrite/database.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "rewrite/npn.hpp"
#include "util/errors.hpp"

namespace rmsyn {
namespace rw {

namespace {

[[noreturn]] void parse_fail(const std::string& what) {
  throw RmsynError(ErrorCode::ParseError, "rewrite database: " + what);
}

int entry_dag_cost(const DbEntry& e) {
  int c = 0;
  for (const DbNode& n : e.nodes) c += n.is_xor ? 3 : 1;
  return c;
}

} // namespace

const DbEntry* RewriteDb::lookup(uint16_t canon) const {
  const auto it = index_.find(canon);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

uint16_t RewriteDb::eval_entry(const DbEntry& e, const std::array<uint16_t, 4>& inputs) {
  std::vector<uint16_t> vals(e.nodes.size(), 0);
  const auto lit_val = [&](DbLit l) -> uint16_t {
    const unsigned r = db_ref(l);
    uint16_t v;
    if (r == 0) v = 0x0000;
    else if (r <= 4) v = inputs[r - 1];
    else v = vals[r - 5];
    return db_neg(l) ? static_cast<uint16_t>(~v) : v;
  };
  for (std::size_t i = 0; i < e.nodes.size(); ++i) {
    const uint16_t a = lit_val(e.nodes[i].a);
    const uint16_t b = lit_val(e.nodes[i].b);
    vals[i] = e.nodes[i].is_xor ? static_cast<uint16_t>(a ^ b)
                                : static_cast<uint16_t>(a & b);
  }
  return lit_val(e.root);
}

RewriteDb RewriteDb::generate() {
  // How a truth table was first reached. Ops: 0 = constant 0, 1 = input
  // projection (a = variable), 2 = complement of a, 3 = AND(a,b),
  // 4 = XOR(a,b).
  struct How {
    uint8_t op = 0;
    uint16_t a = 0, b = 0;
  };
  constexpr uint8_t kInf = 0xFF;
  std::vector<uint8_t> dist(65536, kInf);
  std::vector<How> how(65536);

  // The targets: one representative per NPN class. Cost is NPN-invariant
  // under this node basis (permutation relabels inputs, complements are
  // free), so the representative's optimal cost is the class's.
  std::vector<bool> is_rep(65536, false);
  std::size_t reps_left = 0;
  {
    NpnCache cache;
    for (uint32_t f = 0; f < 65536; ++f) is_rep[cache.canonicalize(static_cast<uint16_t>(f)).canon] = true;
    for (uint32_t f = 0; f < 65536; ++f)
      if (is_rep[f]) ++reps_left;
  }

  std::vector<std::vector<uint16_t>> by_cost(1);
  const auto discover = [&](uint16_t t, How h, int cost, std::vector<uint16_t>& out) {
    if (dist[t] != kInf) return;
    dist[t] = static_cast<uint8_t>(cost);
    how[t] = h;
    out.push_back(t);
    if (is_rep[t]) --reps_left;
    // Complements are free: close every level immediately, which is also
    // what lets the single AND rule cover OR/NAND/NOR.
    const uint16_t nt = static_cast<uint16_t>(~t);
    if (dist[nt] == kInf) {
      dist[nt] = static_cast<uint8_t>(cost);
      how[nt] = How{2, t, 0};
      out.push_back(nt);
      if (is_rep[nt]) --reps_left;
    }
  };

  discover(0x0000, How{0, 0, 0}, 0, by_cost[0]);
  for (uint16_t v = 0; v < 4; ++v)
    discover(kProj4[v], How{1, v, 0}, 0, by_cost[0]);

  for (int c = 1; reps_left > 0 && c < 64; ++c) {
    std::vector<uint16_t> newly;
    const auto combine = [&](int budget, bool use_xor) {
      for (int a = 0; a <= budget - a; ++a) {
        const int b = budget - a;
        if (b >= static_cast<int>(by_cost.size())) continue;
        const std::vector<uint16_t>& ga = by_cost[a];
        const std::vector<uint16_t>& gb = by_cost[b];
        for (std::size_t i = 0; i < ga.size(); ++i) {
          const std::size_t j0 = (a == b) ? i : 0;
          for (std::size_t j = j0; j < gb.size(); ++j) {
            const uint16_t g = ga[i], h = gb[j];
            const uint16_t r = use_xor ? static_cast<uint16_t>(g ^ h)
                                       : static_cast<uint16_t>(g & h);
            discover(r, How{static_cast<uint8_t>(use_xor ? 4 : 3), g, h}, c, newly);
          }
        }
      }
    };
    // XOR first so parity-like classes keep their XOR shape on cost ties.
    if (c >= 3) combine(c - 3, true);
    combine(c - 1, false);
    by_cost.push_back(std::move(newly));
  }
  if (reps_left != 0)
    throw RmsynError(ErrorCode::Internal,
                     "rewrite database generation did not converge");

  RewriteDb db;
  for (uint32_t t = 0; t < 65536; ++t) {
    if (!is_rep[t]) continue;
    DbEntry e;
    e.canon = static_cast<uint16_t>(t);
    std::unordered_map<uint16_t, DbLit> memo;
    const std::function<DbLit(uint16_t)> build = [&](uint16_t f) -> DbLit {
      const auto it = memo.find(f);
      if (it != memo.end()) return it->second;
      const How& h = how[f];
      DbLit l = 0;
      switch (h.op) {
        case 0: l = db_lit(0, false); break;
        case 1: l = db_lit(1 + h.a, false); break;
        case 2: l = static_cast<DbLit>(build(h.a) ^ 1); break;
        default: {
          const DbLit la = build(h.a);
          const DbLit lb = build(h.b);
          e.nodes.push_back(DbNode{h.op == 4, la, lb});
          l = db_lit(4 + static_cast<unsigned>(e.nodes.size()), false);
          break;
        }
      }
      memo.emplace(f, l);
      return l;
    };
    e.root = build(e.canon);
    e.cost = entry_dag_cost(e); // DAG cost <= Dijkstra tree cost
    db.entries_.push_back(std::move(e));
  }
  db.build_index();
  db.validate();
  return db;
}

void RewriteDb::build_index() {
  index_.clear();
  index_.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!index_.emplace(entries_[i].canon, static_cast<uint32_t>(i)).second)
      parse_fail("duplicate class entry");
  }
}

void RewriteDb::validate() const {
  for (const DbEntry& e : entries_) {
    if (npn_canonicalize(e.canon).canon != e.canon)
      parse_fail("entry is not a canonical representative");
    for (std::size_t i = 0; i < e.nodes.size(); ++i) {
      if (db_ref(e.nodes[i].a) >= 5 + i || db_ref(e.nodes[i].b) >= 5 + i)
        parse_fail("node operand references a later node");
    }
    if (db_ref(e.root) >= 5 + e.nodes.size()) parse_fail("root out of range");
    if (e.cost != entry_dag_cost(e)) parse_fail("recorded cost mismatch");
    if (eval_entry(e, {kProj4[0], kProj4[1], kProj4[2], kProj4[3]}) != e.canon)
      parse_fail("structure does not compute its class function");
  }
}

RewriteDb RewriteDb::load(std::istream& in) {
  RewriteDb db;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& what) {
      parse_fail("line " + std::to_string(lineno) + ": " + what);
    };
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') continue;
    DbEntry e;
    {
      std::size_t used = 0;
      unsigned long v = 0;
      try {
        v = std::stoul(tok, &used, 16);
      } catch (const std::exception&) {
        fail("bad class id '" + tok + "'");
      }
      if (used != tok.size() || v > 0xFFFF) fail("bad class id '" + tok + "'");
      e.canon = static_cast<uint16_t>(v);
    }
    long cost = 0, nnodes = 0;
    if (!(ls >> cost >> nnodes) || cost < 0 || nnodes < 0 || nnodes > 64)
      fail("bad cost/node-count");
    e.cost = static_cast<int>(cost);
    for (long i = 0; i < nnodes; ++i) {
      std::string op;
      long a = 0, b = 0;
      if (!(ls >> op >> a >> b) || (op != "A" && op != "X") || a < 0 ||
          b < 0 || a > 0xFFFF || b > 0xFFFF)
        fail("bad node");
      e.nodes.push_back(DbNode{op == "X", static_cast<DbLit>(a), static_cast<DbLit>(b)});
    }
    long root = 0;
    if (!(ls >> root) || root < 0 || root > 0xFFFF) fail("bad root literal");
    e.root = static_cast<DbLit>(root);
    std::string extra;
    if (ls >> extra) fail("trailing tokens");
    db.entries_.push_back(std::move(e));
  }
  if (db.entries_.empty()) parse_fail("no entries");
  db.build_index();
  db.validate();
  return db;
}

RewriteDb RewriteDb::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) parse_fail("cannot open '" + path + "'");
  return load(in);
}

void RewriteDb::save(std::ostream& out) const {
  out << "# rmsyn rewrite database k=4 v1\n";
  out << "# " << entries_.size()
      << " NPN classes; literal = (ref<<1)|neg, ref 0 = const0, 1..4 = "
         "inputs, 5.. = nodes\n";
  char buf[8];
  for (const DbEntry& e : entries_) {
    std::snprintf(buf, sizeof buf, "%04x", e.canon);
    out << buf << ' ' << e.cost << ' ' << e.nodes.size();
    for (const DbNode& n : e.nodes)
      out << ' ' << (n.is_xor ? 'X' : 'A') << ' ' << n.a << ' ' << n.b;
    out << ' ' << e.root << '\n';
  }
}

const RewriteDb& RewriteDb::instance() {
  static const RewriteDb db = [] {
    if (const char* env = std::getenv("RMSYN_REWRITE_DB")) return load_file(env);
#ifdef RMSYN_DATA_DIR
    {
      std::ifstream in(std::string(RMSYN_DATA_DIR) + "/rewrite_db_k4.txt");
      if (in) return load(in);
    }
#endif
    return generate();
  }();
  return db;
}

} // namespace rw
} // namespace rmsyn
