#include "rewrite/cuts.hpp"

#include <algorithm>
#include <unordered_map>

#include "rewrite/npn.hpp"
#include "util/governor.hpp"
#include "util/simd.hpp"

namespace rmsyn {
namespace rw {

namespace {

/// Merges two sorted leaf sets; false when the union exceeds 4.
bool merge_leaves(const Cut& a, const Cut& b, Cut* out) {
  int i = 0, j = 0, k = 0;
  while (i < a.nleaves || j < b.nleaves) {
    NodeId next;
    if (j >= b.nleaves || (i < a.nleaves && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i++];
      if (j < b.nleaves && b.leaves[j] == next) ++j;
    } else {
      next = b.leaves[j++];
    }
    if (k == 4) return false;
    out->leaves[k++] = next;
  }
  out->nleaves = static_cast<uint8_t>(k);
  for (int t = k; t < 4; ++t) out->leaves[t] = Network::kNoNode;
  return true;
}

bool leaves_less(const Cut& a, const Cut& b) {
  if (a.nleaves != b.nleaves) return a.nleaves < b.nleaves;
  return a.leaves < b.leaves;
}

/// Evaluates the cone between `root` and the cut leaves on 16-bit words
/// (leaf i = kProj4[i]). Returns false when the cone escapes the leaves or
/// exceeds `max_cone` visited nodes.
bool eval_cone(const Network& net, NodeId root, const Cut& cut, uint16_t* out,
               int max_cone) {
  std::unordered_map<NodeId, uint16_t> val;
  val.reserve(16);
  for (int i = 0; i < cut.nleaves; ++i) {
    if (net.is_dead(cut.leaves[i])) return false;
    val.emplace(cut.leaves[i], kProj4[i]);
  }
  int visited = 0;
  // Explicit post-order DFS so deep cones cannot overflow the call stack.
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    if (val.count(n)) {
      stack.pop_back();
      continue;
    }
    if (net.is_dead(n)) return false;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) {
      val.emplace(n, t == GateType::Const0 ? 0x0000 : 0xFFFF);
      stack.pop_back();
      continue;
    }
    if (t == GateType::Pi) return false; // escaped past the leaves
    bool ready = true;
    for (const NodeId f : net.fanins(n)) {
      if (!val.count(f)) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) {
      if (++visited > max_cone) return false;
      continue;
    }
    stack.pop_back();
    const FaninSpan fi = net.fanins(n);
    uint16_t v = 0;
    switch (t) {
      case GateType::Buf:
        v = val[fi[0]];
        break;
      case GateType::Not:
        v = static_cast<uint16_t>(~val[fi[0]]);
        break;
      case GateType::And:
      case GateType::Nand:
        v = 0xFFFF;
        for (const NodeId f : fi) v &= val[f];
        if (t == GateType::Nand) v = static_cast<uint16_t>(~v);
        break;
      case GateType::Or:
      case GateType::Nor:
        v = 0x0000;
        for (const NodeId f : fi) v |= val[f];
        if (t == GateType::Nor) v = static_cast<uint16_t>(~v);
        break;
      case GateType::Xor:
      case GateType::Xnor:
        v = 0x0000;
        for (const NodeId f : fi) v ^= val[f];
        if (t == GateType::Xnor) v = static_cast<uint16_t>(~v);
        break;
      default:
        return false;
    }
    val.emplace(n, v);
  }
  *out = val[root];
  return true;
}

/// Dedup by leaf set, drop dominated cuts, order by priority, truncate.
void filter_cuts(std::vector<Cut>* cuts, int limit) {
  std::sort(cuts->begin(), cuts->end(), leaves_less);
  cuts->erase(std::unique(cuts->begin(), cuts->end(),
                          [](const Cut& a, const Cut& b) { return a.same_leaves(b); }),
              cuts->end());
  std::vector<Cut> kept;
  for (const Cut& c : *cuts) {
    bool dominated = false;
    for (const Cut& k : kept) {
      // kept is sorted by size, so only subset checks against smaller cuts.
      if (k.subset_of(c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      kept.push_back(c);
      if (static_cast<int>(kept.size()) >= limit) break;
    }
  }
  *cuts = std::move(kept);
}

} // namespace

bool Cut::subset_of(const Cut& o) const {
  if (nleaves > o.nleaves) return false;
  int j = 0;
  for (int i = 0; i < nleaves; ++i) {
    while (j < o.nleaves && o.leaves[j] < leaves[i]) ++j;
    if (j >= o.nleaves || o.leaves[j] != leaves[i]) return false;
    ++j;
  }
  return true;
}

bool cut_tt(const Network& net, NodeId root, const Cut& cut, uint16_t* tt,
            int max_cone) {
  if (net.is_dead(root)) return false;
  uint16_t full = 0;
  if (!eval_cone(net, root, cut, &full, max_cone)) return false;
  // eval_cone works over 4-variable words; reduce to the cut's arity.
  uint16_t v = full;
  if (cut.nleaves < 4)
    v &= static_cast<uint16_t>((1u << (1 << cut.nleaves)) - 1);
  *tt = v;
  return true;
}

void cut_tts_batch(const Network& net, NodeId root,
                   const std::vector<Cut>& cuts, std::vector<uint16_t>* tts,
                   std::vector<uint8_t>* ok, int max_cone) {
  const std::size_t ncuts = cuts.size();
  tts->assign(ncuts, 0);
  ok->assign(ncuts, 0);
  if (ncuts == 0) return;

  const auto scalar_fallback = [&] {
    for (std::size_t c = 0; c < ncuts; ++c)
      (*ok)[c] = cut_tt(net, root, cuts[c], &(*tts)[c], max_cone) ? 1 : 0;
  };

  // Lane layout: cut c occupies 16-bit lane c%4 of word c/4.
  const std::size_t nwords = (ncuts + 3) / 4;
  const auto lane_shift = [](std::size_t c) { return (c & 3) * 16; };

  // Per-leaf lane masks and projections. A node that is a leaf in SOME
  // lanes but interior in others contributes its projection to the leaf
  // lanes and its computed function to the rest (the mux below).
  struct LaneInfo {
    std::vector<uint64_t> mask, proj;
  };
  std::unordered_map<NodeId, LaneInfo> leaves;
  leaves.reserve(16);
  for (std::size_t c = 0; c < ncuts; ++c) {
    const Cut& cut = cuts[c];
    for (int i = 0; i < cut.nleaves; ++i) {
      const NodeId lf = cut.leaves[i];
      if (net.is_dead(lf)) {
        // A dead leaf fails only the cuts containing it; let the scalar
        // path sort the lanes out.
        scalar_fallback();
        return;
      }
      LaneInfo& li = leaves[lf];
      if (li.mask.empty()) {
        li.mask.assign(nwords, 0);
        li.proj.assign(nwords, 0);
      }
      li.mask[c / 4] |= uint64_t{0xFFFF} << lane_shift(c);
      li.proj[c / 4] |= uint64_t{kProj4[i]} << lane_shift(c);
    }
  }
  // Padding lanes of the last word count as "leaf everywhere" so they
  // never force an expansion on their own.
  uint64_t pad = 0;
  for (std::size_t c = ncuts; c < nwords * 4; ++c)
    pad |= uint64_t{0xFFFF} << lane_shift(c);
  const auto leaf_everywhere = [&](const LaneInfo& li) {
    for (std::size_t w = 0; w + 1 < nwords; ++w)
      if (li.mask[w] != ~uint64_t{0}) return false;
    return (li.mask[nwords - 1] | pad) == ~uint64_t{0};
  };

  // One post-order DFS over the union cone. Exactness argument: per-cut
  // interiors are subsets of the union interior, so bounding the union
  // interior by max_cone bounds every per-cut walk too; a PI interior in
  // any lane (not leaf-everywhere) would fail only some lanes, which the
  // scalar fallback decides instead. Under those guards every lane's
  // value is, by induction over the cone, exactly eval_cone's.
  const simd::Ops& kr = simd::ops();
  std::unordered_map<NodeId, std::vector<uint64_t>> val;
  val.reserve(32);
  std::vector<uint64_t> tmp(nwords);
  const uint64_t* ins_small[8];
  std::vector<const uint64_t*> ins_big;
  int expanded = 0;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    if (val.count(n)) {
      stack.pop_back();
      continue;
    }
    if (net.is_dead(n)) {
      scalar_fallback();
      return;
    }
    const auto li = leaves.find(n);
    if (li != leaves.end() && leaf_everywhere(li->second)) {
      val.emplace(n, li->second.proj);
      stack.pop_back();
      continue;
    }
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) {
      val.emplace(n, std::vector<uint64_t>(
                         nwords, t == GateType::Const0 ? 0 : ~uint64_t{0}));
      stack.pop_back();
      continue;
    }
    if (t == GateType::Pi) {
      // Interior PI in at least one lane: that lane's scalar walk
      // escapes; decide all lanes scalar.
      scalar_fallback();
      return;
    }
    const FaninSpan fi = net.fanins(n);
    bool ready = true;
    for (const NodeId f : fi) {
      if (!val.count(f)) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) continue;
    if (++expanded > max_cone) {
      scalar_fallback();
      return;
    }
    stack.pop_back();
    const uint64_t** ins = ins_small;
    if (fi.size() > 8) {
      ins_big.resize(fi.size());
      ins = ins_big.data();
    }
    for (std::size_t k = 0; k < fi.size(); ++k) ins[k] = val[fi[k]].data();
    switch (t) {
      case GateType::Buf:
        std::copy(ins[0], ins[0] + nwords, tmp.data());
        break;
      case GateType::Not:
        kr.v_not(tmp.data(), ins[0], nwords);
        break;
      case GateType::And:
      case GateType::Nand:
        if (fi.size() == 1) {
          std::copy(ins[0], ins[0] + nwords, tmp.data());
        } else {
          kr.v_and(tmp.data(), ins[0], ins[1], nwords, false);
          for (std::size_t k = 2; k < fi.size(); ++k)
            kr.v_and_acc(tmp.data(), ins[k], nwords);
        }
        if (t == GateType::Nand) kr.v_not(tmp.data(), tmp.data(), nwords);
        break;
      case GateType::Or:
      case GateType::Nor:
        if (fi.size() == 1) {
          std::copy(ins[0], ins[0] + nwords, tmp.data());
        } else {
          kr.v_or(tmp.data(), ins[0], ins[1], nwords, false);
          for (std::size_t k = 2; k < fi.size(); ++k)
            kr.v_or_acc(tmp.data(), ins[k], nwords);
        }
        if (t == GateType::Nor) kr.v_not(tmp.data(), tmp.data(), nwords);
        break;
      case GateType::Xor:
      case GateType::Xnor:
        if (fi.size() == 1) {
          std::copy(ins[0], ins[0] + nwords, tmp.data());
        } else {
          kr.v_xor(tmp.data(), ins[0], ins[1], nwords, false);
          for (std::size_t k = 2; k < fi.size(); ++k)
            kr.v_xor_acc(tmp.data(), ins[k], nwords);
        }
        if (t == GateType::Xnor) kr.v_not(tmp.data(), tmp.data(), nwords);
        break;
      default:
        scalar_fallback();
        return;
    }
    if (li != leaves.end())
      kr.v_mux(tmp.data(), li->second.mask.data(), li->second.proj.data(),
               tmp.data(), nwords);
    val.emplace(n, tmp);
  }

  const std::vector<uint64_t>& rv = val[root];
  for (std::size_t c = 0; c < ncuts; ++c) {
    uint16_t v = static_cast<uint16_t>((rv[c / 4] >> lane_shift(c)) & 0xFFFF);
    if (cuts[c].nleaves < 4)
      v &= static_cast<uint16_t>((1u << (1 << cuts[c].nleaves)) - 1);
    (*tts)[c] = v;
    (*ok)[c] = 1;
  }
}

std::vector<std::vector<Cut>> enumerate_cuts(const Network& net,
                                             const std::vector<NodeId>& order,
                                             const CutOptions& opt,
                                             uint64_t* cuts_enumerated,
                                             ResourceGovernor* gov) {
  std::vector<std::vector<Cut>> sets(net.node_count());
  const auto trivial = [](NodeId n) {
    Cut c;
    c.leaves[0] = n;
    c.nleaves = 1;
    c.tt = 0xAAAA & 0x3; // variable 0 over one leaf
    return c;
  };
  for (const NodeId n : order) {
    if (gov && !gov->poll()) break;
    const GateType t = net.type(n);
    std::vector<Cut>& out = sets[n];
    if (t == GateType::Const0 || t == GateType::Const1) {
      Cut c;
      c.tt = (t == GateType::Const1) ? 0xFFFF : 0x0000;
      out.push_back(c);
      continue;
    }
    if (t == GateType::Pi) {
      out.push_back(trivial(n));
      if (cuts_enumerated) ++*cuts_enumerated;
      continue;
    }
    // Fold fanin cut sets into merged leaf sets.
    std::vector<Cut> acc{Cut{}}; // single empty cut as the fold seed
    for (const NodeId f : net.fanins(n)) {
      std::vector<Cut> next;
      for (const Cut& a : acc) {
        for (const Cut& b : sets[f]) {
          Cut m;
          if (!merge_leaves(a, b, &m)) continue;
          next.push_back(m);
        }
      }
      filter_cuts(&next, opt.merge_limit);
      acc = std::move(next);
      if (acc.empty()) break; // every merge overflowed 4 leaves
    }
    // Compute tables. Leaves the function does not depend on are kept:
    // dropping them would leave the dropped node inside the cone, and the
    // phase-C cut_tt revalidation walk (which must stay bounded by the
    // leaves) could then never re-derive the table. NPN canonicalization
    // handles dummy variables — degenerate functions have classes among
    // the 222 like any other.
    std::vector<Cut> ready;
    std::vector<uint16_t> tts;
    std::vector<uint8_t> tt_ok;
    cut_tts_batch(net, n, acc, &tts, &tt_ok);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (!tt_ok[i]) continue;
      acc[i].tt = tts[i];
      ready.push_back(acc[i]);
    }
    filter_cuts(&ready, opt.cut_limit);
    ready.push_back(trivial(n));
    if (cuts_enumerated) *cuts_enumerated += ready.size();
    out = std::move(ready);
  }
  return sets;
}

} // namespace rw
} // namespace rmsyn
