// Priority k-input cut enumeration (k = 4) over the SoA gate network.
//
// A cut of node n is a set of at most 4 nodes ("leaves") such that every
// path from a PI/constant to n passes through a leaf; the function of n over
// the leaves is a 16-bit truth table. Cut sets are built bottom-up in
// topological order by merging fanin cut sets (folding pairwise across
// n-ary fanins, with a capped intermediate frontier), filtered by
// dominance (a cut whose leaves are a subset of another's supersedes it),
// ordered by (leaf count, lexicographic leaves) and truncated to a
// per-node limit — the classic priority-cuts scheme. The trivial cut {n}
// is always kept so fanouts can merge through n itself.
//
// Truth tables are computed by evaluating the cone between the leaves and
// the root (leaf i reads projection kProj4[i]). Leaves the table does not
// depend on are deliberately KEPT: they are still structurally inside the
// cone, and the replacement engine revalidates cuts by re-walking the cone
// bounded by the leaves. NPN canonicalization absorbs dummy variables.
//
// Everything here is read-only over the network and deterministic: the
// rewrite pass enumerates serially, then evaluates candidates in parallel
// against the frozen cut sets.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "network/network.hpp"

namespace rmsyn {

class ResourceGovernor;

namespace rw {

struct Cut {
  std::array<NodeId, 4> leaves = {Network::kNoNode, Network::kNoNode,
                                  Network::kNoNode, Network::kNoNode};
  uint8_t nleaves = 0;
  uint16_t tt = 0; ///< over the leaves: leaf i is variable i (low 2^nleaves
                   ///< bits meaningful; constants use nleaves == 0)

  bool same_leaves(const Cut& o) const {
    return nleaves == o.nleaves && leaves == o.leaves;
  }
  /// True when this cut's leaves are a subset of o's (dominance).
  bool subset_of(const Cut& o) const;
};

struct CutOptions {
  int cut_limit = 8;    ///< priority cuts kept per node (excl. the trivial cut)
  int merge_limit = 24; ///< intermediate frontier cap while folding n-ary fanins
};

/// Per-node cut sets, indexed by NodeId (empty for nodes outside `order`).
/// `cuts_enumerated`, when given, is incremented once per kept cut. With a
/// governor attached the walk polls once per node and stops early on
/// exhaustion (the caller checks gov->exhausted() and unwinds).
std::vector<std::vector<Cut>> enumerate_cuts(const Network& net,
                                             const std::vector<NodeId>& order,
                                             const CutOptions& opt,
                                             uint64_t* cuts_enumerated = nullptr,
                                             ResourceGovernor* gov = nullptr);

/// Re-derives the truth table of `cut` at `root` on the CURRENT network by
/// walking the cone between root and the cut leaves. Returns false (without
/// a table) when the cut is stale: a leaf or the root is dead, the cone
/// escapes past the leaves, or more than `max_cone` nodes are visited.
bool cut_tt(const Network& net, NodeId root, const Cut& cut, uint16_t* tt,
            int max_cone = 128);

/// Batch form of cut_tt over all cuts of one root: the 16-bit tables are
/// lane-packed four per 64-bit word and the shared cone is evaluated once
/// through the SIMD kernels, with a per-node mux splicing leaf projections
/// into the lanes where that node is a leaf. Exact by construction —
/// whenever the single union-cone walk cannot guarantee per-cut-identical
/// results (union cone over max_cone, a dead node, or a PI that is not a
/// leaf of every cut), it falls back to per-cut cut_tt — so (*ok)[i] and
/// (*tts)[i] always equal cut_tt(net, root, cuts[i], ...) exactly.
void cut_tts_batch(const Network& net, NodeId root,
                   const std::vector<Cut>& cuts, std::vector<uint16_t>* tts,
                   std::vector<uint8_t>* ok, int max_cone = 128);

} // namespace rw
} // namespace rmsyn
