#include "rewrite/rewrite.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "network/stats.hpp"
#include "obs/trace.hpp"
#include "rewrite/cuts.hpp"
#include "rewrite/database.hpp"
#include "rewrite/npn.hpp"
#include "sched/pool.hpp"
#include "sim/sim.hpp"
#include "util/governor.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {
namespace rw {

namespace {

using NodeSet = std::unordered_set<NodeId>;

/// The paper's cost of one node in 2-input AND/OR gate equivalents,
/// mirroring network_stats(): n-ary AND/OR/NAND/NOR = n-1, XOR/XNOR =
/// 3(n-1), inverters and buffers free.
int gate_cost2(const Network& net, NodeId n) {
  const int k = static_cast<int>(net.fanin_count(n));
  switch (net.type(n)) {
    case GateType::And:
    case GateType::Or:
    case GateType::Nand:
    case GateType::Nor:
      return k < 2 ? 0 : k - 1;
    case GateType::Xor:
    case GateType::Xnor:
      return k < 2 ? 0 : 3 * (k - 1);
    default:
      return 0;
  }
}

/// Cost of the maximum fanout-free cone of `root` over the given cut:
/// root's own gate plus every node that becomes unreferenced when root's
/// old fanins are disconnected (simulated by local deref counting, stopping
/// at cut leaves, PIs, constants and PO-referenced nodes). Dying nodes land
/// in `mffc` (root excluded — it is rewritten in place, never deleted).
int mffc_saved(const Network& net, NodeId root, const Cut& cut,
               std::vector<NodeId>* mffc) {
  NodeSet leafset(cut.leaves.begin(), cut.leaves.begin() + cut.nleaves);
  std::unordered_map<NodeId, uint32_t> ref;
  int saved = gate_cost2(net, root);
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId f : net.fanins(n)) {
      const GateType t = net.type(f);
      if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
        continue;
      if (leafset.count(f)) continue;
      auto [it, inserted] = ref.try_emplace(f, net.ref_count(f));
      (void)inserted;
      if (it->second == 0) continue;
      if (--(it->second) == 0 && net.po_ref_count(f) == 0) {
        saved += gate_cost2(net, f);
        if (mffc) mffc->push_back(f);
        stack.push_back(f);
      }
    }
  }
  return saved;
}

/// A resolved value while materializing a database structure: a concrete
/// network node, or (in dry runs) a node that WOULD be created. `tt` is the
/// value over the cut's 4-variable minterm space.
struct RVal {
  NodeId id = Network::kNoNode;
  bool fresh = false; ///< would be / was newly created
  uint16_t tt = 0;
};

struct BuildOutcome {
  bool ok = false;
  int added_cost = 0;            ///< 2-input gate cost of genuinely new nodes
  std::vector<NodeId> new_ids;   ///< commit mode: created nodes, topo order
  NodeId top = Network::kNoNode; ///< commit mode: fanin for the root rewrite
  bool top_neg = false;          ///< commit mode: root becomes Not instead of Buf
};

/// Finds an existing live node computing exactly (type, fanins) that is
/// safe to feed the root's new cone: level(s) <= level(root) guarantees the
/// root is not in s's fanin cone (levels are maintained), so no cycle can
/// form; MFFC members are excluded so a "shared" node is never one the gain
/// accounting already counted as dying.
NodeId find_shared(const Network& net, GateType t, NodeId a, NodeId b,
                   NodeId root, const NodeSet& excl) {
  const uint32_t root_level = net.level(root);
  for (const NodeId s : net.fanouts(a)) {
    if (s == root || net.is_dead(s) || net.type(s) != t) continue;
    if (net.level(s) > root_level || excl.count(s)) continue;
    const FaninSpan fi = net.fanins(s);
    if (t == GateType::Not) {
      if (fi.size() == 1 && fi[0] == a) return s;
    } else if (fi.size() == 2 &&
               ((fi[0] == a && fi[1] == b) || (fi[0] == b && fi[1] == a))) {
      return s;
    }
  }
  return Network::kNoNode;
}

/// Materializes (or, with net_mut == null, only costs) the database entry
/// over the cut's leaves after un-canonicalization. The dry run and the
/// commit run walk identically — sharing decisions depend only on the
/// current network — so the committed cost always equals the estimate.
BuildOutcome build_structure(Network* net_mut, const Network& net, NodeId root,
                             const DbEntry& e, const NpnTransform& xf,
                             const Cut& cut, const NodeSet& excl) {
  BuildOutcome out;
  const bool commit = net_mut != nullptr;

  // Invert the permutation: canonical input y_i is fed from cut leaf
  // inv[i], complemented when the transform negates that original input.
  std::array<int, 4> inv{};
  for (int j = 0; j < 4; ++j) inv[xf.perm[j]] = j;

  // Resolutions per database ref (0 = const0, 1..4 = inputs, 5.. = nodes),
  // plus a cache of their complements so no Not is planned twice.
  std::vector<RVal> res(5 + e.nodes.size());
  std::vector<RVal> res_neg(5 + e.nodes.size());
  std::vector<bool> have(5 + e.nodes.size(), false);
  std::vector<bool> have_neg(5 + e.nodes.size(), false);

  const auto negate = [&](const RVal& v) -> RVal {
    if (!v.fresh && v.id == Network::kConst0)
      return RVal{Network::kConst1, false, static_cast<uint16_t>(~v.tt)};
    if (!v.fresh && v.id == Network::kConst1)
      return RVal{Network::kConst0, false, static_cast<uint16_t>(~v.tt)};
    if (!v.fresh) {
      const NodeId s = find_shared(net, GateType::Not, v.id, Network::kNoNode,
                                   root, excl);
      if (s != Network::kNoNode)
        return RVal{s, false, static_cast<uint16_t>(~v.tt)};
    }
    if (commit) {
      const NodeId id = net_mut->add_gate(GateType::Not, {v.id});
      out.new_ids.push_back(id);
      return RVal{id, true, static_cast<uint16_t>(~v.tt)};
    }
    return RVal{Network::kNoNode, true, static_cast<uint16_t>(~v.tt)};
  };

  const auto resolve_ref = [&](unsigned r) -> RVal {
    if (have[r]) return res[r];
    RVal v;
    if (r == 0) {
      v = RVal{Network::kConst0, false, 0x0000};
    } else { // inputs y0..y3
      const int j = inv[r - 1];
      if (j >= cut.nleaves) {
        // Padded input: the canonical function cannot depend on it, so
        // constant 0 preserves the function.
        v = RVal{Network::kConst0, false, 0x0000};
      } else {
        v = RVal{cut.leaves[j], false, kProj4[j]};
        if ((xf.neg >> j) & 1) v = negate(v);
      }
    }
    have[r] = true;
    res[r] = v;
    return v;
  };

  const auto resolve_lit = [&](DbLit l) -> RVal {
    const unsigned r = db_ref(l);
    if (!db_neg(l)) return resolve_ref(r);
    if (have_neg[r]) return res_neg[r];
    const RVal v = negate(resolve_ref(r));
    have_neg[r] = true;
    res_neg[r] = v;
    return v;
  };

  for (std::size_t i = 0; i < e.nodes.size(); ++i) {
    const DbNode& dn = e.nodes[i];
    const RVal a = resolve_lit(dn.a);
    const RVal b = resolve_lit(dn.b);
    const uint16_t tt = dn.is_xor ? static_cast<uint16_t>(a.tt ^ b.tt)
                                  : static_cast<uint16_t>(a.tt & b.tt);
    const GateType gt = dn.is_xor ? GateType::Xor : GateType::And;
    RVal v;
    if (!a.fresh && !b.fresh) {
      const NodeId s = find_shared(net, gt, a.id, b.id, root, excl);
      if (s != Network::kNoNode) v = RVal{s, false, tt};
    }
    if (v.id == Network::kNoNode && !v.fresh) {
      out.added_cost += dn.is_xor ? 3 : 1;
      if (commit) {
        const NodeId id = net_mut->add_gate(gt, {a.id, b.id});
        out.new_ids.push_back(id);
        v = RVal{id, true, tt};
      } else {
        v = RVal{Network::kNoNode, true, tt};
      }
    }
    have[5 + i] = true;
    res[5 + i] = v;
  }

  // Root: fold the root literal's phase and the output complement into the
  // root gate itself (Not instead of Buf), so no final inverter is built.
  const RVal base = resolve_ref(db_ref(e.root));
  const bool neg = db_neg(e.root) ^ xf.out_neg;
  const uint16_t built = neg ? static_cast<uint16_t>(~base.tt) : base.tt;
  if (built != tt16_extend(cut.tt, cut.nleaves)) return out; // ok = false
  out.ok = true;
  out.top = base.id;
  out.top_neg = neg;
  return out;
}

struct Candidate {
  Cut cut;
  NpnTransform xform;
  const DbEntry* entry = nullptr;
  int gain = 0;
};

struct EvalOut {
  Candidate cand;
  uint32_t db_hits = 0;
};

/// Phase B: pure function of the frozen network — picks the best
/// positive-gain replacement for one root (ties: first cut in priority
/// order), so results are identical no matter which worker runs it.
EvalOut eval_root(const Network& net, NodeId root,
                  const std::vector<std::vector<Cut>>& cutsets,
                  const RewriteDb& db, NpnCache& cache) {
  EvalOut out;
  for (const Cut& cut : cutsets[root]) {
    if (cut.nleaves == 1 && cut.leaves[0] == root) continue; // trivial
    const uint16_t full = tt16_extend(cut.tt, cut.nleaves);
    const NpnResult nr = cache.canonicalize(full);
    const DbEntry* e = db.lookup(nr.canon);
    if (!e) continue;
    ++out.db_hits;
    std::vector<NodeId> mffc;
    const int saved = mffc_saved(net, root, cut, &mffc);
    // gain <= saved even with full sharing, so this cut cannot win.
    if (saved <= out.cand.gain) continue;
    NodeSet excl(mffc.begin(), mffc.end());
    excl.insert(root);
    const BuildOutcome bo =
        build_structure(nullptr, net, root, *e, nr.xform, cut, excl);
    if (!bo.ok) continue;
    const int gain = saved - bo.added_cost;
    if (gain > out.cand.gain) {
      out.cand.cut = cut;
      out.cand.xform = nr.xform;
      out.cand.entry = e;
      out.cand.gain = gain;
    }
  }
  return out;
}

/// Recycles every node in `seeds` (and, transitively, their fanins) that is
/// fully unreferenced. recycle() unlinks the node's own fanin edges, so the
/// cascade's ref counts stay maintained throughout.
void recycle_cascade(Network& net, const std::vector<NodeId>& seeds) {
  std::vector<NodeId> stack(seeds);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    if (net.is_dead(n) || net.ref_count(n) != 0 || net.po_ref_count(n) != 0)
      continue;
    const std::vector<NodeId> fins = net.fanins(n).to_vector();
    net.recycle(n);
    for (const NodeId f : fins) stack.push_back(f);
  }
}

/// Independent functional check of the COMMITTED cone: rebuilds root's
/// function over the cut leaves in a small BDD manager and compares it to
/// the expected table. Exercises different machinery than the 16-bit
/// pre-check, so bookkeeping bugs in the materializer cannot slip through.
bool bdd_cone_check(BddManager& mgr, const Network& net, NodeId root,
                    const Cut& cut, uint16_t expect_full) {
  std::unordered_map<NodeId, BddRef> val;
  for (int i = 0; i < cut.nleaves; ++i) val.emplace(cut.leaves[i], mgr.var(i));
  int visited = 0;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    if (val.count(n)) {
      stack.pop_back();
      continue;
    }
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) {
      val.emplace(n, t == GateType::Const0 ? mgr.bdd_false() : mgr.bdd_true());
      stack.pop_back();
      continue;
    }
    if (t == GateType::Pi || net.is_dead(n)) return false;
    bool ready = true;
    for (const NodeId f : net.fanins(n)) {
      if (!val.count(f)) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) {
      if (++visited > 256) return false;
      continue;
    }
    stack.pop_back();
    const FaninSpan fi = net.fanins(n);
    BddRef v = mgr.bdd_false();
    switch (t) {
      case GateType::Buf:
        v = val[fi[0]];
        break;
      case GateType::Not:
        v = mgr.bdd_not(val[fi[0]]);
        break;
      case GateType::And:
      case GateType::Nand:
        v = mgr.bdd_true();
        for (const NodeId f : fi) v = mgr.bdd_and(v, val[f]);
        if (t == GateType::Nand) v = mgr.bdd_not(v);
        break;
      case GateType::Or:
      case GateType::Nor:
        v = mgr.bdd_false();
        for (const NodeId f : fi) v = mgr.bdd_or(v, val[f]);
        if (t == GateType::Nor) v = mgr.bdd_not(v);
        break;
      case GateType::Xor:
      case GateType::Xnor:
        v = mgr.bdd_false();
        for (const NodeId f : fi) v = mgr.bdd_xor(v, val[f]);
        if (t == GateType::Xnor) v = mgr.bdd_not(v);
        break;
      default:
        return false;
    }
    val.emplace(n, v);
  }
  BddRef expect = mgr.bdd_false();
  for (int m = 0; m < 16; ++m) {
    if (!((expect_full >> m) & 1)) continue;
    BddRef cube = mgr.bdd_true();
    for (int j = 0; j < 4; ++j)
      cube = mgr.bdd_and(cube, mgr.literal(j, (m >> j) & 1));
    expect = mgr.bdd_or(expect, cube);
  }
  return val[root] == expect;
}

} // namespace

RewriteStats rewrite_network(Network& net, const RewriteOptions& opt,
                             SimStats* sim_out) {
  // No pass-level span here: synthesize() already wraps this call in the
  // "rewrite" ScopedStage; the per-phase spans below are the new detail.
  RewriteStats st;
  st.lits_before = network_stats(net).lits;
  st.lits_after = st.lits_before;

  RewriteDb local_db;
  const RewriteDb* db = nullptr;
  if (!opt.db_path.empty()) {
    local_db = RewriteDb::load_file(opt.db_path);
    db = &local_db;
  } else {
    db = &RewriteDb::instance();
  }

  ResourceGovernor* gov = opt.governor;
  ThreadPool* pool =
      (opt.pool != nullptr && opt.pool->worker_count() > 0) ? opt.pool : nullptr;
  BddManager check_mgr(4, /*cache_bits=*/10);

  const CutOptions cut_opt{opt.cut_limit, std::max(2 * opt.cut_limit, 16)};

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    if (gov && gov->exhausted()) break;
    ++st.passes;

    // ---- Phase A: serial cut enumeration over the frozen network --------
    Stopwatch phase_sw;
    std::vector<NodeId> order;
    std::vector<std::vector<Cut>> cutsets;
    {
      RMSYN_SPAN("rewrite-cuts");
      order = net.topo_order();
      cutsets = enumerate_cuts(net, order, cut_opt, &st.cuts_enumerated, gov);
    }
    st.cuts_seconds += phase_sw.seconds();
    if (gov && gov->exhausted()) break;

    std::vector<NodeId> roots;
    roots.reserve(order.size());
    for (const NodeId n : order)
      if (gate_cost2(net, n) > 0) roots.push_back(n);
    st.roots += roots.size();

    // ---- Phase B: parallel candidate evaluation (network still frozen) --
    phase_sw.restart();
    std::vector<EvalOut> outs(roots.size());
    {
      RMSYN_SPAN("rewrite-evaluate");
      if (pool && roots.size() >= 32) {
        std::vector<NpnCache> caches(pool->slot_count());
        constexpr std::size_t kChunk = 64;
        std::vector<Future<bool>> futs;
        for (std::size_t begin = 0; begin < roots.size(); begin += kChunk) {
          const std::size_t end = std::min(begin + kChunk, roots.size());
          futs.push_back(pool->submit([&, begin, end] {
            NpnCache& cache = caches[pool->current_slot()];
            for (std::size_t i = begin; i < end; ++i) {
              if (gov && !gov->poll()) return false;
              outs[i] = eval_root(net, roots[i], cutsets, *db, cache);
            }
            return true;
          }));
        }
        for (auto& f : futs) pool->wait(f);
      } else {
        NpnCache cache;
        for (std::size_t i = 0; i < roots.size(); ++i) {
          if (gov && !gov->poll()) break;
          outs[i] = eval_root(net, roots[i], cutsets, *db, cache);
        }
      }
    }
    st.eval_seconds += phase_sw.seconds();
    if (gov && gov->exhausted()) break; // nothing mutated yet: clean unwind
    for (const EvalOut& o : outs) {
      st.db_hits += o.db_hits;
      if (o.cand.gain > 0) ++st.candidates;
    }

    // ---- Phase C: serial apply with verify-then-commit ------------------
    phase_sw.restart();
    RMSYN_SPAN("rewrite-apply"); // closes at the pass boundary, like phase C
    PatternSet patterns =
        random_patterns(net.pi_count(), static_cast<std::size_t>(opt.sim_patterns),
                        opt.sim_seed);
    // Pattern words shard across the pool during the construction-time
    // full pass; the verify compares below are vectorized in SimState.
    SimState sim(net, std::move(patterns), opt.pool);
    const std::vector<BitVec> baseline = sim.po_values();

    uint64_t applied_this_pass = 0;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      if (gov && !gov->poll()) break;
      const Candidate& cand = outs[i].cand;
      if (cand.entry == nullptr || cand.gain <= 0) continue;
      const NodeId root = roots[i];

      // Re-validate against the current network: earlier commits may have
      // recycled leaves, restructured the cone or changed the gain.
      if (net.is_dead(root) || gate_cost2(net, root) == 0) {
        ++st.stale_skips;
        continue;
      }
      uint16_t now_tt = 0;
      if (!cut_tt(net, root, cand.cut, &now_tt) || now_tt != cand.cut.tt) {
        ++st.stale_skips;
        continue;
      }
      std::vector<NodeId> mffc;
      const int saved = mffc_saved(net, root, cand.cut, &mffc);
      NodeSet excl(mffc.begin(), mffc.end());
      excl.insert(root);
      const BuildOutcome dry =
          build_structure(nullptr, net, root, *cand.entry, cand.xform, cand.cut, excl);
      if (!dry.ok || saved - dry.added_cost <= 0) {
        ++st.stale_skips;
        continue;
      }

      // Commit: materialize the structure, swing the root onto it.
      const GateType saved_type = net.type(root);
      const std::vector<NodeId> saved_fanins = net.fanins(root).to_vector();
      const BuildOutcome built =
          build_structure(&net, net, root, *cand.entry, cand.xform, cand.cut, excl);
      if (!built.ok) { // cannot happen after a clean dry run; stay safe
        recycle_cascade(net, built.new_ids);
        ++st.stale_skips;
        continue;
      }
      net.rewrite_gate(root, built.top_neg ? GateType::Not : GateType::Buf,
                       {built.top});

      std::vector<NodeId> dirty = built.new_ids;
      dirty.push_back(root);
      sim.resimulate(dirty);

      const uint16_t expect_full = tt16_extend(cand.cut.tt, cand.cut.nleaves);
      const bool sim_ok = sim.po_values_match(baseline);
      const bool bdd_ok =
          sim_ok && bdd_cone_check(check_mgr, net, root, cand.cut, expect_full);
      if (!sim_ok || !bdd_ok) {
        if (!sim_ok) ++st.sim_rejects;
        else ++st.bdd_rejects;
        net.rewrite_gate(root, saved_type, saved_fanins);
        recycle_cascade(net, {built.new_ids.rbegin(), built.new_ids.rend()});
        sim.resimulate(root);
        maybe_check_invariants(net, "rewrite-revert");
        continue;
      }

      // Verified: reclaim the dead MFFC.
      recycle_cascade(net, saved_fanins);
      maybe_check_invariants(net, "rewrite-apply");
      ++st.replacements;
      ++applied_this_pass;
    }
    if (sim_out) sim_out->accumulate(sim.take_stats());
    st.apply_seconds += phase_sw.seconds();

    st.lits_after = network_stats(net).lits;
    if (applied_this_pass == 0) break;
    if (gov && gov->exhausted()) break;
  }

  st.gain_lits =
      st.lits_before > st.lits_after ? st.lits_before - st.lits_after : 0;
  return st;
}

} // namespace rw
} // namespace rmsyn
