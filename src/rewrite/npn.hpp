// NPN canonicalization of 4-input functions (exhaustive over the full
// transform group) plus the 16-bit truth-table helpers the cut-rewriting
// engine computes with.
//
// A 4-input function is a 16-bit word (bit m = f(minterm m), input j is bit
// j of m). The NPN group acts by input permutation, input complementation
// and output complementation: 24 * 16 * 2 = 768 transforms partition the
// 65536 functions into 222 classes. The rewrite database stores one optimal
// structure per class; canonicalization returns the transform so a database
// hit can be mapped back onto the original cut (see database.hpp).
//
// Transform semantics (the one fixed convention everything else follows):
//
//   c(y0..y3) = out_neg XOR f(x0..x3),   x_j = y_{perm[j]} XOR neg_j
//
// i.e. input j of the ORIGINAL function is fed from input perm[j] of the
// CANONICAL function, complemented when bit j of `neg` is set. The
// canonical representative is the lexicographically smallest image (as a
// uint16) over all 768 transforms.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmsyn {
namespace rw {

/// Projection of variable j onto a 16-bit (4-variable) truth table.
inline constexpr uint16_t kProj4[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

/// Cofactor of a 16-bit table with variable `var` fixed to `value`; the
/// result still ranges over 4 variables (the fixed one becomes irrelevant).
inline uint16_t tt16_cofactor(uint16_t t, int var, bool value) {
  const uint16_t mask = value ? kProj4[var] : static_cast<uint16_t>(~kProj4[var]);
  const int shift = 1 << var;
  const uint16_t half = t & mask;
  return value ? static_cast<uint16_t>(half | (half >> shift))
               : static_cast<uint16_t>(half | (half << shift));
}

inline bool tt16_depends(uint16_t t, int var) {
  return tt16_cofactor(t, var, false) != tt16_cofactor(t, var, true);
}

/// Removes an irrelevant variable: the table over k variables (bits beyond
/// 2^k replicate) loses position `var`, variables above it shift down.
uint16_t tt16_erase_var(uint16_t t, int var, int nvars);

/// Pads a table over `nvars` < 4 variables (only the low 2^nvars bits
/// meaningful) to a full 16-bit table with the extra variables irrelevant.
uint16_t tt16_extend(uint16_t t, int nvars);

struct NpnTransform {
  std::array<uint8_t, 4> perm = {0, 1, 2, 3};
  uint8_t neg = 0; ///< input complement mask, bit j = x_j
  bool out_neg = false;
};

struct NpnResult {
  uint16_t canon = 0;
  NpnTransform xform;
};

/// Applies the transform: returns c with c(y) = out_neg ^ f(x),
/// x_j = y_{perm[j]} ^ neg_j.
uint16_t npn_apply(uint16_t f, const NpnTransform& t);

/// Exhaustive canonicalization: the lexicographically smallest image over
/// all 768 transforms, together with a transform achieving it (the first
/// one in the fixed perm-lex / neg-ascending / plain-then-complemented
/// enumeration order, so the result is deterministic).
NpnResult npn_canonicalize(uint16_t f);

/// Number of distinct NPN classes of <=4-input functions (222). Walks all
/// 65536 functions; intended for tests and the database generator.
std::size_t npn_class_count();

/// Memoizing wrapper: one 65536-entry table, not thread-safe — the rewrite
/// pass keeps one per scheduler slot.
class NpnCache {
public:
  NpnResult canonicalize(uint16_t f);

private:
  std::vector<uint64_t> slots_ = std::vector<uint64_t>(65536, ~uint64_t{0});
};

} // namespace rw
} // namespace rmsyn
