#include "mapping/mapper.hpp"

#include <functional>
#include <limits>
#include <map>
#include <stdexcept>

#include "network/transform.hpp"

namespace rmsyn {

namespace {

/// Builds NAND2/INV nodes with structural hashing local to the subject
/// graph (the generic strash would normalize NANDs away).
class SubjectBuilder {
public:
  explicit SubjectBuilder(Network& net) : net_(&net) {}

  NodeId inv(NodeId a) {
    if (a == Network::kConst0) return Network::kConst1;
    if (a == Network::kConst1) return Network::kConst0;
    if (net_->type(a) == GateType::Not) return net_->fanins(a)[0];
    return hashed(GateType::Not, {a});
  }

  NodeId nand(NodeId a, NodeId b) {
    if (a == Network::kConst0 || b == Network::kConst0) return Network::kConst1;
    if (a == Network::kConst1) return inv(b);
    if (b == Network::kConst1) return inv(a);
    if (a > b) std::swap(a, b);
    return hashed(GateType::Nand, {a, b});
  }

private:
  NodeId hashed(GateType t, std::vector<NodeId> fi) {
    const auto key = std::make_pair(t, fi);
    if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
    const NodeId id = net_->add_gate(t, fi);
    cache_.emplace(key, id);
    return id;
  }

  Network* net_;
  std::map<std::pair<GateType, std::vector<NodeId>>, NodeId> cache_;
};

} // namespace

Network subject_graph(const Network& net) {
  const Network src = decompose2(strash(net));
  Network out;
  SubjectBuilder sb(out);
  std::vector<NodeId> map(src.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t i = 0; i < src.pi_count(); ++i)
    map[src.pis()[i]] = out.add_pi(src.name(src.pis()[i]));

  const auto live = src.live_mask();
  for (const NodeId n : src.topo_order()) {
    if (!live[n]) continue;
    const GateType t = src.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const auto& fi = src.fanins(n);
    const NodeId a = map[fi[0]];
    const NodeId b = fi.size() > 1 ? map[fi[1]] : Network::kConst0;
    switch (t) {
      case GateType::Buf: map[n] = a; break;
      case GateType::Not: map[n] = sb.inv(a); break;
      case GateType::And: map[n] = sb.inv(sb.nand(a, b)); break;
      case GateType::Nand: map[n] = sb.nand(a, b); break;
      case GateType::Or: map[n] = sb.nand(sb.inv(a), sb.inv(b)); break;
      case GateType::Nor: map[n] = sb.inv(sb.nand(sb.inv(a), sb.inv(b))); break;
      case GateType::Xor:
        // Canonical 4-NAND XOR tree: matches the library's `a*!b+!a*b`.
        map[n] = sb.nand(sb.nand(a, sb.inv(b)), sb.nand(sb.inv(a), b));
        break;
      case GateType::Xnor:
        map[n] = sb.inv(sb.nand(sb.nand(a, sb.inv(b)), sb.nand(sb.inv(a), b)));
        break;
      default:
        throw std::logic_error("subject_graph: unexpected gate");
    }
  }
  for (std::size_t i = 0; i < src.po_count(); ++i)
    out.add_po(map[src.po(i)], src.po_name(i));
  return sweep(out);
}

namespace {

/// Enumerates all bindings of pattern `p` rooted at subject node `s`;
/// each binding is the list of subject nodes the pattern inputs map to.
void match_all(const PatNode* p, NodeId s, const Network& sg,
               const std::vector<bool>& boundary, NodeId root,
               std::vector<NodeId>& leaves,
               std::vector<std::vector<NodeId>>& out) {
  if (p->kind == PatNode::Kind::Input) {
    leaves.push_back(s);
    out.push_back(leaves);
    leaves.pop_back();
    return;
  }
  const GateType need =
      p->kind == PatNode::Kind::Inv ? GateType::Not : GateType::Nand;
  if (sg.type(s) != need) return;
  if (s != root && boundary[s]) return; // matches cannot cross tree edges

  if (p->kind == PatNode::Kind::Inv) {
    match_all(p->a.get(), sg.fanins(s)[0], sg, boundary, root, leaves, out);
    return;
  }
  // NAND: commutative — try both child assignments. The nested recursion
  // needs completed left bindings before descending right, so enumerate
  // left bindings, then extend each.
  const NodeId f0 = sg.fanins(s)[0];
  const NodeId f1 = sg.fanins(s)[1];
  for (const auto& [ca, cb] :
       {std::make_pair(f0, f1), std::make_pair(f1, f0)}) {
    std::vector<std::vector<NodeId>> left;
    {
      std::vector<NodeId> scratch = leaves;
      match_all(p->a.get(), ca, sg, boundary, root, scratch, left);
    }
    for (auto& lb : left) {
      std::vector<NodeId> scratch = lb;
      match_all(p->b.get(), cb, sg, boundary, root, scratch, out);
    }
    if (f0 == f1) break; // symmetric children: avoid duplicate bindings
  }
}

struct Choice {
  const Cell* cell = nullptr;
  std::vector<NodeId> leaves;
};

} // namespace

MapResult map_network(const Network& net, const CellLibrary& lib) {
  const Network sg = subject_graph(net);
  MapResult result;

  const auto live = sg.live_mask();
  const auto fanouts = sg.fanout_counts();
  std::vector<bool> boundary(sg.node_count(), false);
  for (NodeId n = 0; n < sg.node_count(); ++n) {
    const GateType t = sg.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      boundary[n] = true;
    else if (fanouts[n] > 1)
      boundary[n] = true;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(sg.node_count(), kInf);
  std::vector<Choice> choice(sg.node_count());

  const auto leaf_cost = [&](NodeId l) -> double {
    if (boundary[l]) return 0.0; // covered by its own tree
    return best[l];
  };

  for (const NodeId n : sg.topo_order()) {
    if (!live[n]) continue;
    const GateType t = sg.type(n);
    if (t != GateType::Not && t != GateType::Nand) continue;
    for (const auto& cell : lib.cells) {
      for (const auto& pattern : cell.patterns) {
        std::vector<std::vector<NodeId>> bindings;
        std::vector<NodeId> scratch;
        match_all(pattern.get(), n, sg, boundary, n, scratch, bindings);
        for (const auto& leaves : bindings) {
          double cost = cell.area;
          for (const NodeId l : leaves) cost += leaf_cost(l);
          if (cost < best[n]) {
            best[n] = cost;
            choice[n] = {&cell, leaves};
          }
        }
      }
    }
    if (best[n] == kInf)
      throw std::logic_error("map_network: node has no match (library must "
                             "contain inv and nand2)");
  }

  // Materialize covers from each tree root (multi-fanout internal nodes and
  // PO targets). `cell_depth[n]` counts cells on the longest path from the
  // PIs up to and including the cell rooted at n.
  std::vector<bool> emitted(sg.node_count(), false);
  std::vector<std::size_t> cell_depth(sg.node_count(), 0);
  const std::function<void(NodeId)> emit = [&](NodeId r) {
    const GateType t = sg.type(r);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      return;
    if (emitted[r]) return;
    emitted[r] = true;
    const Choice& ch = choice[r];
    result.gates.push_back({ch.cell->name, ch.cell->area, ch.cell->num_inputs});
    result.area += ch.cell->area;
    result.literal_count += static_cast<std::size_t>(ch.cell->num_inputs);
    // Leaves are either roots of other trees (boundary) or interior nodes
    // not covered by this match; both get their own chosen cover.
    std::size_t in_depth = 0;
    for (const NodeId l : ch.leaves) {
      emit(l);
      in_depth = std::max(in_depth, cell_depth[l]);
    }
    cell_depth[r] = in_depth + 1;
    result.depth = std::max(result.depth, cell_depth[r]);
  };
  // Interior leaves are covered by their own chosen match; boundary leaves
  // start new trees. Both paths go through emit(), which deduplicates.
  for (NodeId n = 0; n < sg.node_count(); ++n)
    if (live[n] && boundary[n] && sg.type(n) != GateType::Pi &&
        sg.type(n) != GateType::Const0 && sg.type(n) != GateType::Const1)
      emit(n);
  for (std::size_t i = 0; i < sg.po_count(); ++i) emit(sg.po(i));

  result.gate_count = result.gates.size();
  return result;
}

} // namespace rmsyn
