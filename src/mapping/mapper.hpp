// Technology mapping by tree covering (the SIS `map` algorithm): the
// network is decomposed into a NAND2/INV subject graph, split into trees at
// multi-fanout points, and each tree is covered with library cells by
// dynamic programming over the cell pattern trees (Keutzer's DAGON scheme).
#pragma once

#include <string>
#include <vector>

#include "mapping/genlib.hpp"
#include "network/network.hpp"

namespace rmsyn {

struct MappedGate {
  std::string cell;
  double area = 0.0;
  int pins = 0;
};

struct MapResult {
  std::vector<MappedGate> gates;
  double area = 0.0;
  std::size_t gate_count = 0;
  std::size_t literal_count = 0; ///< total cell input pins (SIS map lits)
  std::size_t depth = 0;         ///< cells on the longest PI->PO path
};

/// Decomposes `net` into the NAND2/INV subject basis. XOR gates become the
/// canonical 4-NAND tree so the library's XOR/XNOR cells can match them.
Network subject_graph(const Network& net);

/// Maps the network onto `lib` for minimum area.
MapResult map_network(const Network& net, const CellLibrary& lib);

} // namespace rmsyn
