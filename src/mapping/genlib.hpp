// genlib cell-library support: the format SIS's `map` consumes
// (lines of the form `GATE <name> <area> <output>=<expr>;` with !, *, +
// and parentheses). Cells are compiled into NAND2/INV tree patterns for the
// tree-covering mapper.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace rmsyn {

/// A node of a cell's pattern tree over the NAND2/INV subject basis.
struct PatNode {
  enum class Kind { Input, Inv, Nand } kind = Kind::Input;
  int input_index = -1;                  ///< for Kind::Input
  std::unique_ptr<PatNode> a, b;         ///< Inv uses a; Nand uses a and b

  static std::unique_ptr<PatNode> input(int idx);
  static std::unique_ptr<PatNode> inv(std::unique_ptr<PatNode> x);
  static std::unique_ptr<PatNode> nand(std::unique_ptr<PatNode> x,
                                       std::unique_ptr<PatNode> y);
  std::unique_ptr<PatNode> clone() const;
};

struct Cell {
  std::string name;
  double area = 0.0;
  int num_inputs = 0;
  /// Alternative NAND2/INV tree decompositions of the cell function. Wide
  /// AND/OR chains get both the caterpillar and the balanced shape so the
  /// tree matcher finds them regardless of how the subject graph was
  /// decomposed (commutativity is handled by the matcher itself).
  std::vector<std::unique_ptr<PatNode>> patterns;

  Cell() = default;
  Cell(Cell&&) = default;
  Cell& operator=(Cell&&) = default;
  Cell(const Cell& o)
      : name(o.name), area(o.area), num_inputs(o.num_inputs) {
    for (const auto& p : o.patterns) patterns.push_back(p->clone());
  }
};

struct CellLibrary {
  std::vector<Cell> cells;
};

/// Parses genlib text. Expressions may use variable names, !, ', *, +,
/// parentheses, and the constants CONST0/CONST1 (constant cells are
/// accepted but not used by the tree mapper). Throws std::runtime_error on
/// syntax errors. AND/OR operators are compiled through De Morgan into
/// NAND/INV with double inverters collapsed, so e.g. `a*!b + !a*b` becomes
/// the canonical 4-NAND XOR tree.
CellLibrary parse_genlib(const std::string& text);

/// The built-in mcnc-flavoured library used for Table 2: INV, 2-input
/// XOR/XNOR, 2-input AND/OR, NAND/NOR up to four inputs and the four
/// complex cells (AOI21/AOI22/OAI21/OAI22), with the XOR cell ~3x the area
/// of a 2-input AND/OR — the ratio the paper's argument depends on.
const CellLibrary& mcnc_library();

/// The genlib source text of the built-in library (also a parser test
/// vector and a template for user libraries).
const std::string& mcnc_library_text();

} // namespace rmsyn
