#include "mapping/genlib.hpp"

#include <cctype>
#include <map>
#include <stdexcept>

namespace rmsyn {

std::unique_ptr<PatNode> PatNode::input(int idx) {
  auto n = std::make_unique<PatNode>();
  n->kind = Kind::Input;
  n->input_index = idx;
  return n;
}

std::unique_ptr<PatNode> PatNode::inv(std::unique_ptr<PatNode> x) {
  // Collapse double inverters so De Morgan rewriting yields canonical
  // trees (INV(INV(t)) == t).
  if (x->kind == Kind::Inv) return std::move(x->a);
  auto n = std::make_unique<PatNode>();
  n->kind = Kind::Inv;
  n->a = std::move(x);
  return n;
}

std::unique_ptr<PatNode> PatNode::nand(std::unique_ptr<PatNode> x,
                                       std::unique_ptr<PatNode> y) {
  auto n = std::make_unique<PatNode>();
  n->kind = Kind::Nand;
  n->a = std::move(x);
  n->b = std::move(y);
  return n;
}

std::unique_ptr<PatNode> PatNode::clone() const {
  auto n = std::make_unique<PatNode>();
  n->kind = kind;
  n->input_index = input_index;
  if (a) n->a = a->clone();
  if (b) n->b = b->clone();
  return n;
}

namespace {

/// Boolean expression AST with n-ary AND/OR (nested same-operator nodes are
/// flattened), from which alternative pattern shapes are generated.
struct Ast {
  enum class Op { Var, Not, And, Or } op = Op::Var;
  int var = -1;
  std::vector<Ast> kids;
};

/// Recursive-descent parser for genlib boolean expressions.
/// Grammar:  or := and ('+' and)* ; and := lit ('*'? lit)* ;
///           lit := '!' lit | primary '\''* ; primary := name | '(' or ')'
class ExprParser {
public:
  ExprParser(const std::string& s, std::map<std::string, int>& vars)
      : s_(s), vars_(vars) {}

  Ast parse() {
    Ast e = parse_or();
    skip_ws();
    if (pos_ != s_.size())
      throw std::runtime_error("genlib: trailing characters in expression");
    return e;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool eat(char c) {
    if (peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  static Ast nary(Ast::Op op, std::vector<Ast> kids) {
    // Flatten nested same-op children.
    Ast n;
    n.op = op;
    for (auto& k : kids) {
      if (k.op == op) {
        for (auto& kk : k.kids) n.kids.push_back(std::move(kk));
      } else {
        n.kids.push_back(std::move(k));
      }
    }
    if (n.kids.size() == 1) return std::move(n.kids[0]);
    return n;
  }

  Ast parse_or() {
    std::vector<Ast> kids;
    kids.push_back(parse_and());
    while (eat('+')) kids.push_back(parse_and());
    return nary(Ast::Op::Or, std::move(kids));
  }

  Ast parse_and() {
    std::vector<Ast> kids;
    kids.push_back(parse_lit());
    while (true) {
      skip_ws();
      if (pos_ >= s_.size()) break;
      const char c = s_[pos_];
      if (c == '*') {
        ++pos_;
      } else if (c == '!' || c == '(' ||
                 std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        // implicit AND (juxtaposition)
      } else {
        break;
      }
      kids.push_back(parse_lit());
    }
    return nary(Ast::Op::And, std::move(kids));
  }

  Ast parse_lit() {
    skip_ws();
    if (eat('!')) {
      Ast n;
      n.op = Ast::Op::Not;
      n.kids.push_back(parse_lit());
      return n;
    }
    Ast p = parse_primary();
    while (eat('\'')) {
      Ast n;
      n.op = Ast::Op::Not;
      n.kids.push_back(std::move(p));
      p = std::move(n);
    }
    return p;
  }

  Ast parse_primary() {
    skip_ws();
    if (eat('(')) {
      Ast e = parse_or();
      if (!eat(')')) throw std::runtime_error("genlib: missing ')'");
      return e;
    }
    std::string name;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_'))
      name.push_back(s_[pos_++]);
    if (name.empty()) throw std::runtime_error("genlib: expected identifier");
    const auto [it, inserted] =
        vars_.emplace(name, static_cast<int>(vars_.size()));
    Ast n;
    n.op = Ast::Op::Var;
    n.var = it->second;
    return n;
  }

  const std::string& s_;
  std::map<std::string, int>& vars_;
  std::size_t pos_ = 0;
};

using Pat = std::unique_ptr<PatNode>;

Pat and2(Pat x, Pat y) {
  return PatNode::inv(PatNode::nand(std::move(x), std::move(y)));
}
Pat or2(Pat x, Pat y) {
  return PatNode::nand(PatNode::inv(std::move(x)), PatNode::inv(std::move(y)));
}

/// Reduces a list of operand patterns into one tree, caterpillar or
/// balanced, with the given 2-input combiner.
Pat reduce_shape(std::vector<Pat> ops, bool balanced, Pat (*comb)(Pat, Pat)) {
  if (balanced) {
    while (ops.size() > 1) {
      std::vector<Pat> next;
      for (std::size_t i = 0; i + 1 < ops.size(); i += 2)
        next.push_back(comb(std::move(ops[i]), std::move(ops[i + 1])));
      if (ops.size() % 2 == 1) next.push_back(std::move(ops.back()));
      ops = std::move(next);
    }
  } else {
    while (ops.size() > 1) {
      Pat merged = comb(std::move(ops[0]), std::move(ops[1]));
      ops.erase(ops.begin());
      ops[0] = std::move(merged);
    }
  }
  return std::move(ops[0]);
}

constexpr std::size_t kMaxPatternsPerCell = 8;

/// All NAND/INV tree variants of an AST node (shape alternatives for wide
/// AND/OR chains), capped.
std::vector<Pat> emit_variants(const Ast& ast) {
  switch (ast.op) {
    case Ast::Op::Var: {
      std::vector<Pat> out;
      out.push_back(PatNode::input(ast.var));
      return out;
    }
    case Ast::Op::Not: {
      std::vector<Pat> out;
      for (auto& k : emit_variants(ast.kids[0]))
        out.push_back(PatNode::inv(std::move(k)));
      return out;
    }
    case Ast::Op::And:
    case Ast::Op::Or: {
      // Cartesian product of child variants, capped.
      std::vector<std::vector<Pat>> child_sets;
      for (const auto& k : ast.kids) child_sets.push_back(emit_variants(k));
      std::vector<std::vector<Pat>> combos;
      combos.emplace_back();
      for (auto& set : child_sets) {
        std::vector<std::vector<Pat>> next;
        for (auto& combo : combos) {
          for (auto& alt : set) {
            if (next.size() >= kMaxPatternsPerCell) break;
            std::vector<Pat> extended;
            for (auto& p : combo) extended.push_back(p->clone());
            extended.push_back(alt->clone());
            next.push_back(std::move(extended));
          }
        }
        combos = std::move(next);
      }
      Pat (*comb)(Pat, Pat) = ast.op == Ast::Op::And ? and2 : or2;
      const bool wide = ast.kids.size() >= 4;
      std::vector<Pat> out;
      for (auto& combo : combos) {
        if (out.size() >= kMaxPatternsPerCell) break;
        if (wide) {
          std::vector<Pat> copy;
          for (auto& p : combo) copy.push_back(p->clone());
          out.push_back(reduce_shape(std::move(copy), /*balanced=*/true, comb));
        }
        if (out.size() >= kMaxPatternsPerCell) break;
        out.push_back(reduce_shape(std::move(combo), /*balanced=*/false, comb));
      }
      return out;
    }
  }
  return {};
}

} // namespace

CellLibrary parse_genlib(const std::string& text) {
  CellLibrary lib;
  std::size_t pos = 0;
  const auto skip_ws_comments = [&] {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text[pos] == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  };
  const auto next_token = [&]() -> std::string {
    skip_ws_comments();
    std::string tok;
    while (pos < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[pos])))
      tok.push_back(text[pos++]);
    return tok;
  };

  while (true) {
    skip_ws_comments();
    if (pos >= text.size()) break;
    const std::string kw = next_token();
    if (kw != "GATE")
      throw std::runtime_error("genlib: expected GATE, got " + kw);
    Cell cell;
    cell.name = next_token();
    cell.area = std::stod(next_token());
    // Function up to ';'.
    skip_ws_comments();
    std::string fn;
    while (pos < text.size() && text[pos] != ';') fn.push_back(text[pos++]);
    if (pos >= text.size()) throw std::runtime_error("genlib: missing ';'");
    ++pos; // ';'
    const auto eq = fn.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("genlib: missing '=' in " + cell.name);
    const std::string expr = fn.substr(eq + 1);
    if (expr.find("CONST") != std::string::npos) {
      // Constant cells carry no pattern; they are not used by the mapper.
      cell.num_inputs = 0;
      lib.cells.push_back(std::move(cell));
      continue;
    }
    std::map<std::string, int> vars;
    ExprParser parser(expr, vars);
    const Ast ast = parser.parse();
    cell.patterns = emit_variants(ast);
    cell.num_inputs = static_cast<int>(vars.size());
    lib.cells.push_back(std::move(cell));
  }
  return lib;
}

const std::string& mcnc_library_text() {
  // Areas follow the mcnc.genlib proportions, normalized so an inverter is
  // 1: simple 2-input gates ~2, the XOR/XNOR pair ~5 (the "XOR is roughly
  // three AND/OR gates" cost the paper leans on), complex AOI/OAI cells
  // between. The XNOR function is written in the complemented-XOR form so
  // its canonical pattern tree matches the subject graph's XNOR
  // decomposition (INV over the 4-NAND XOR tree).
  static const std::string text = R"(
# mcnc-flavoured standard-cell library (normalized areas)
GATE inv1   1.0 O=!a;
GATE nand2  2.0 O=!(a*b);
GATE nor2   2.0 O=!(a+b);
GATE and2   3.0 O=a*b;
GATE or2    3.0 O=a+b;
GATE nand3  3.0 O=!(a*b*c);
GATE nor3   3.0 O=!(a+b+c);
GATE nand4  4.0 O=!(a*b*c*d);
GATE nor4   4.0 O=!(a+b+c+d);
GATE xor2   5.0 O=a*!b+!a*b;
GATE xnor2  5.0 O=!(a*!b+!a*b);
GATE aoi21  3.0 O=!(a*b+c);
GATE aoi22  4.0 O=!(a*b+c*d);
GATE oai21  3.0 O=!((a+b)*c);
GATE oai22  4.0 O=!((a+b)*(c+d));
GATE zero   0.0 O=CONST0;
GATE one    0.0 O=CONST1;
)";
  return text;
}

const CellLibrary& mcnc_library() {
  static const CellLibrary lib = parse_genlib(mcnc_library_text());
  return lib;
}

} // namespace rmsyn
