#include "network/simulate.hpp"

#include <algorithm>
#include <cassert>

#include "network/eval_kernel.hpp"
#include "sched/pool.hpp"
#include "util/rng.hpp"

namespace rmsyn {

void PatternSet::append(const BitVec& assignment) {
  assert(assignment.size() == bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i].resize(num_patterns + 1);
    bits[i].set(num_patterns, assignment.get(i));
  }
  ++num_patterns;
}

void PatternSet::reserve(std::size_t expected_patterns) {
  for (auto& b : bits) b.reserve(expected_patterns);
}

namespace {

/// Evaluates every gate's value words in range [w0, w1) in topological
/// order. Word-local, so disjoint ranges can run concurrently over the
/// same row storage. Complemented gates leave tail garbage in the last
/// word; the caller masks all rows afterwards.
void simulate_range(const Network& net, const std::vector<NodeId>& order,
                    std::vector<BitVec>& value, std::size_t w0,
                    std::size_t w1) {
  const std::size_t nw = w1 - w0;
  if (nw == 0) return;
  const uint64_t* ins_inline[kEvalInlineFanins];
  std::vector<const uint64_t*> ins_heap;
  for (const NodeId n : order) {
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const auto& fi = net.fanins(n);
    const uint64_t** ins = ins_inline;
    if (fi.size() > kEvalInlineFanins) {
      ins_heap.resize(fi.size());
      ins = ins_heap.data();
    }
    for (std::size_t k = 0; k < fi.size(); ++k)
      ins[k] = value[fi[k]].data() + w0;
    eval_gate_words(t, ins, fi.size(), value[n].data() + w0, nw);
  }
}

} // namespace

std::vector<BitVec> simulate(const Network& net, const PatternSet& patterns,
                             ThreadPool* pool) {
  assert(patterns.bits.size() == net.pi_count());
  const std::size_t np = patterns.num_patterns;
  std::vector<BitVec> value(net.node_count(), BitVec(np));
  value[Network::kConst1].set_all();
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    value[net.pis()[i]] = patterns.bits[i];

  // topo_order() re-runs a full DFS per call — hoist the one copy every
  // shard (and the tail sweep) iterates.
  const std::vector<NodeId> order = net.topo_order();

  const std::size_t nw = (np + 63) / 64;
  // Sharding only pays once each shard has a few SIMD blocks of work.
  constexpr std::size_t kMinWordsPerShard = 8;
  std::size_t nshards = 1;
  if (pool != nullptr && pool->worker_count() > 0)
    nshards = std::min<std::size_t>(static_cast<std::size_t>(pool->slot_count()),
                                    nw / kMinWordsPerShard);

  if (nshards <= 1) {
    simulate_range(net, order, value, 0, nw);
  } else {
    std::vector<Future<bool>> futs;
    for (std::size_t s = 0; s < nshards; ++s) {
      const std::size_t w0 = s * nw / nshards;
      const std::size_t w1 = (s + 1) * nw / nshards;
      futs.push_back(pool->submit([&net, &order, &value, w0, w1] {
        simulate_range(net, order, value, w0, w1);
        return true;
      }));
    }
    for (auto& fut : futs) pool->wait(fut);
  }

  // Complemented gates set the unused tail bits of the final word;
  // restore the BitVec tail invariant on every computed row.
  for (const NodeId n : order) value[n].mask_tail();
  for (auto& row : value) row.assert_tail_clear();
  return value;
}

PatternSet random_patterns(std::size_t num_pis, std::size_t count, uint64_t seed) {
  Rng rng(seed);
  PatternSet ps(num_pis, count);
  for (auto& b : ps.bits) {
    for (std::size_t w = 0; w < b.words(); ++w) b.word(w) = rng.next();
    b.mask_tail();
    b.assert_tail_clear();
  }
  return ps;
}

PatternSet pattern_block(const PatternSet& ps, std::size_t first_pattern,
                         std::size_t count) {
  assert(first_pattern % 64 == 0);
  assert(first_pattern + count <= ps.num_patterns);
  const std::size_t first_word = first_pattern / 64;
  PatternSet out(ps.bits.size(), count);
  for (std::size_t i = 0; i < ps.bits.size(); ++i) {
    BitVec& row = out.bits[i];
    for (std::size_t w = 0; w < row.words(); ++w)
      row.word(w) = ps.bits[i].word(first_word + w);
    row.mask_tail();
    row.assert_tail_clear();
  }
  return out;
}

} // namespace rmsyn
