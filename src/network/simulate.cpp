#include "network/simulate.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace rmsyn {

void PatternSet::append(const BitVec& assignment) {
  assert(assignment.size() == bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i].resize(num_patterns + 1);
    bits[i].set(num_patterns, assignment.get(i));
  }
  ++num_patterns;
}

void PatternSet::reserve(std::size_t expected_patterns) {
  for (auto& b : bits) b.reserve(expected_patterns);
}

std::vector<BitVec> simulate(const Network& net, const PatternSet& patterns) {
  assert(patterns.bits.size() == net.pi_count());
  const std::size_t np = patterns.num_patterns;
  std::vector<BitVec> value(net.node_count(), BitVec(np));
  value[Network::kConst1].set_all();
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    value[net.pis()[i]] = patterns.bits[i];

  for (const NodeId n : net.topo_order()) {
    const auto& fi = net.fanins(n);
    auto& out = value[n];
    switch (net.type(n)) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf:
        out = value[fi[0]];
        break;
      case GateType::Not:
        out = value[fi[0]];
        out.flip_all();
        break;
      case GateType::And: case GateType::Nand: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out &= value[fi[k]];
        if (net.type(n) == GateType::Nand) out.flip_all();
        break;
      }
      case GateType::Or: case GateType::Nor: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out |= value[fi[k]];
        if (net.type(n) == GateType::Nor) out.flip_all();
        break;
      }
      case GateType::Xor: case GateType::Xnor: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out ^= value[fi[k]];
        if (net.type(n) == GateType::Xnor) out.flip_all();
        break;
      }
    }
  }
  return value;
}

PatternSet random_patterns(std::size_t num_pis, std::size_t count, uint64_t seed) {
  Rng rng(seed);
  PatternSet ps(num_pis, count);
  for (auto& b : ps.bits) {
    for (std::size_t w = 0; w < b.words(); ++w) b.word(w) = rng.next();
    // Double complement masks the stray tail bits of the last word.
    b.flip_all();
    b.flip_all();
  }
  return ps;
}

PatternSet pattern_block(const PatternSet& ps, std::size_t first_pattern,
                         std::size_t count) {
  assert(first_pattern % 64 == 0);
  assert(first_pattern + count <= ps.num_patterns);
  const std::size_t first_word = first_pattern / 64;
  PatternSet out(ps.bits.size(), count);
  for (std::size_t i = 0; i < ps.bits.size(); ++i) {
    BitVec& row = out.bits[i];
    for (std::size_t w = 0; w < row.words(); ++w)
      row.word(w) = ps.bits[i].word(first_word + w);
    row.flip_all();
    row.flip_all(); // tail masking
  }
  return out;
}

} // namespace rmsyn
