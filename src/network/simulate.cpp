#include "network/simulate.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace rmsyn {

void PatternSet::append(const BitVec& assignment) {
  assert(assignment.size() == bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i].resize(num_patterns + 1);
    bits[i].set(num_patterns, assignment.get(i));
  }
  ++num_patterns;
}

std::vector<BitVec> simulate(const Network& net, const PatternSet& patterns) {
  assert(patterns.bits.size() == net.pi_count());
  const std::size_t np = patterns.num_patterns;
  std::vector<BitVec> value(net.node_count(), BitVec(np));
  value[Network::kConst1].set_all();
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    value[net.pis()[i]] = patterns.bits[i];

  for (const NodeId n : net.topo_order()) {
    const auto& fi = net.fanins(n);
    auto& out = value[n];
    switch (net.type(n)) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf:
        out = value[fi[0]];
        break;
      case GateType::Not:
        out = value[fi[0]];
        for (std::size_t w = 0; w < out.words(); ++w) out.word(w) = ~out.word(w);
        // Mask stray tail bits by re-anding with an all-ones vector of the
        // right width.
        {
          BitVec ones(np);
          ones.set_all();
          out &= ones;
        }
        break;
      case GateType::And: case GateType::Nand: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out &= value[fi[k]];
        if (net.type(n) == GateType::Nand) {
          BitVec ones(np);
          ones.set_all();
          out ^= ones;
        }
        break;
      }
      case GateType::Or: case GateType::Nor: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out |= value[fi[k]];
        if (net.type(n) == GateType::Nor) {
          BitVec ones(np);
          ones.set_all();
          out ^= ones;
        }
        break;
      }
      case GateType::Xor: case GateType::Xnor: {
        out = value[fi[0]];
        for (std::size_t k = 1; k < fi.size(); ++k) out ^= value[fi[k]];
        if (net.type(n) == GateType::Xnor) {
          BitVec ones(np);
          ones.set_all();
          out ^= ones;
        }
        break;
      }
    }
  }
  return value;
}

PatternSet random_patterns(std::size_t num_pis, std::size_t count, uint64_t seed) {
  Rng rng(seed);
  PatternSet ps(num_pis, count);
  for (auto& b : ps.bits)
    for (std::size_t w = 0; w < b.words(); ++w) b.word(w) = rng.next();
  // Mask tails.
  BitVec ones(count);
  ones.set_all();
  for (auto& b : ps.bits) b &= ones;
  return ps;
}

} // namespace rmsyn
