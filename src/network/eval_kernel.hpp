// Word-range gate evaluation on the SIMD kernels (DESIGN.md §15).
//
// Every simulator in rmsyn — the one-shot simulate() pass, SimState's
// cached full pass and event-driven resim, and the fault overlay — boils
// down to the same step: combine the fanin pattern words of one gate into
// its output words. This helper is that step, shared so the scalar, AVX2
// and NEON dispatches all see one code path and the sharded simulators
// can evaluate an arbitrary word sub-range of a row.
//
// Complemented gates (NAND/NOR/XNOR/NOT) may leave garbage in the unused
// tail bits of a row's final word; callers that evaluate a range covering
// the last word re-establish the BitVec tail invariant with mask_tail().
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "network/network.hpp"
#include "util/simd.hpp"

namespace rmsyn {

/// Evaluates gate type `t` over `nw` words: out[0..nw) from the fanin
/// word pointers ins[0..nfi). Const0/Const1 fill; Pi/unknown leave out
/// untouched. out may alias ins[k] (the kernels are pure word-wise).
inline void eval_gate_words(GateType t, const uint64_t* const* ins,
                            std::size_t nfi, uint64_t* out, std::size_t nw) {
  const simd::Ops& k = simd::ops();
  switch (t) {
    case GateType::Pi:
      break;
    case GateType::Const0:
      std::memset(out, 0, nw * sizeof(uint64_t));
      break;
    case GateType::Const1:
      std::memset(out, 0xff, nw * sizeof(uint64_t));
      break;
    case GateType::Buf:
      if (out != ins[0]) std::memcpy(out, ins[0], nw * sizeof(uint64_t));
      break;
    case GateType::Not:
      k.v_not(out, ins[0], nw);
      break;
    case GateType::And:
    case GateType::Nand: {
      const bool inv = (t == GateType::Nand);
      if (nfi == 1) {
        if (inv)
          k.v_not(out, ins[0], nw);
        else if (out != ins[0])
          std::memcpy(out, ins[0], nw * sizeof(uint64_t));
      } else {
        k.v_and(out, ins[0], ins[1], nw, inv && nfi == 2);
        for (std::size_t i = 2; i < nfi; ++i) k.v_and_acc(out, ins[i], nw);
        if (inv && nfi > 2) k.v_not(out, out, nw);
      }
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      const bool inv = (t == GateType::Nor);
      if (nfi == 1) {
        if (inv)
          k.v_not(out, ins[0], nw);
        else if (out != ins[0])
          std::memcpy(out, ins[0], nw * sizeof(uint64_t));
      } else {
        k.v_or(out, ins[0], ins[1], nw, inv && nfi == 2);
        for (std::size_t i = 2; i < nfi; ++i) k.v_or_acc(out, ins[i], nw);
        if (inv && nfi > 2) k.v_not(out, out, nw);
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      const bool inv = (t == GateType::Xnor);
      if (nfi == 1) {
        if (inv)
          k.v_not(out, ins[0], nw);
        else if (out != ins[0])
          std::memcpy(out, ins[0], nw * sizeof(uint64_t));
      } else {
        k.v_xor(out, ins[0], ins[1], nw, inv && nfi == 2);
        for (std::size_t i = 2; i < nfi; ++i) k.v_xor_acc(out, ins[i], nw);
        if (inv && nfi > 2) k.v_not(out, out, nw);
      }
      break;
    }
  }
}

/// Max fanin count evaluated without a heap allocation for the pointer
/// array; wider gates spill to a caller-provided vector.
inline constexpr std::size_t kEvalInlineFanins = 8;

} // namespace rmsyn
