#include "network/network.hpp"

#include <cassert>
#include <stdexcept>

namespace rmsyn {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Const0: return "const0";
    case GateType::Const1: return "const1";
    case GateType::Pi: return "pi";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
  }
  return "?";
}

Network::Network() {
  types_ = {GateType::Const0, GateType::Const1};
  fanins_.resize(2);
  names_ = {"const0", "const1"};
}

NodeId Network::add_pi(std::string name) {
  const NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(GateType::Pi);
  fanins_.emplace_back();
  if (name.empty()) name = "x" + std::to_string(pis_.size());
  names_.push_back(std::move(name));
  pis_.push_back(id);
  return id;
}

NodeId Network::add_gate(GateType type, std::vector<NodeId> fanins) {
  if (type == GateType::Not || type == GateType::Buf) {
    if (fanins.size() != 1)
      throw std::invalid_argument("Network: NOT/BUF take one fanin");
  } else if (type == GateType::Pi || type == GateType::Const0 ||
             type == GateType::Const1) {
    throw std::invalid_argument("Network: use add_pi/constant");
  } else if (fanins.empty()) {
    throw std::invalid_argument("Network: gate needs fanins");
  }
  for (const NodeId f : fanins)
    if (f >= types_.size())
      throw std::invalid_argument("Network: fanin does not exist");
  const NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  fanins_.push_back(std::move(fanins));
  names_.emplace_back();
  return id;
}

void Network::add_po(NodeId node, std::string name) {
  assert(node < types_.size());
  if (name.empty()) name = "z" + std::to_string(pos_.size());
  pos_.push_back(node);
  po_names_.push_back(std::move(name));
}

std::size_t Network::pi_index(NodeId n) const {
  for (std::size_t i = 0; i < pis_.size(); ++i)
    if (pis_[i] == n) return i;
  throw std::invalid_argument("Network::pi_index: not a PI");
}

void Network::rewrite_gate(NodeId n, GateType type, std::vector<NodeId> fanins) {
  assert(n >= 2 && n < types_.size());
  assert(types_[n] != GateType::Pi);
  types_[n] = type;
  fanins_[n] = std::move(fanins);
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<uint8_t> state(types_.size(), 0); // 0 new, 1 open, 2 done
  std::vector<NodeId> order;
  order.reserve(types_.size());
  // Iterative DFS to avoid stack overflow on deep chains.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  const auto visit = [&](NodeId root) {
    if (state[root] == 2) return;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [n, idx] = stack.back();
      if (state[n] == 2) { stack.pop_back(); continue; }
      state[n] = 1;
      if (idx < fanins_[n].size()) {
        const NodeId f = fanins_[n][idx++];
        if (state[f] == 0) stack.emplace_back(f, 0);
        else if (state[f] == 1)
          throw std::logic_error("Network: cycle detected");
      } else {
        state[n] = 2;
        order.push_back(n);
        stack.pop_back();
      }
    }
  };
  visit(kConst0);
  visit(kConst1);
  for (const NodeId pi : pis_) visit(pi);
  for (const NodeId po : pos_) visit(po);
  return order;
}

std::vector<bool> Network::live_mask() const {
  std::vector<bool> live(types_.size(), false);
  std::vector<NodeId> stack(pos_.begin(), pos_.end());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = true;
    for (const NodeId f : fanins_[n]) stack.push_back(f);
  }
  for (const NodeId pi : pis_) live[pi] = true;
  live[kConst0] = live[kConst1] = true;
  return live;
}

std::vector<uint32_t> Network::fanout_counts() const {
  std::vector<uint32_t> counts(types_.size(), 0);
  const auto live = live_mask();
  for (NodeId n = 0; n < types_.size(); ++n) {
    if (!live[n]) continue;
    for (const NodeId f : fanins_[n]) ++counts[f];
  }
  for (const NodeId po : pos_) ++counts[po];
  return counts;
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == pis_.size());
  std::vector<bool> value(types_.size(), false);
  value[kConst1] = true;
  for (std::size_t i = 0; i < pis_.size(); ++i) value[pis_[i]] = pi_values[i];
  for (const NodeId n : topo_order()) {
    const auto& fi = fanins_[n];
    switch (types_[n]) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf: value[n] = value[fi[0]]; break;
      case GateType::Not: value[n] = !value[fi[0]]; break;
      case GateType::And: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = v;
        break;
      }
      case GateType::Nand: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = !v;
        break;
      }
      case GateType::Or: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = v;
        break;
      }
      case GateType::Nor: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = !v;
        break;
      }
      case GateType::Xor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = v;
        break;
      }
      case GateType::Xnor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = !v;
        break;
      }
    }
  }
  std::vector<bool> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) out[i] = value[pos_[i]];
  return out;
}

} // namespace rmsyn
