#include "network/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace rmsyn {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Const0: return "const0";
    case GateType::Const1: return "const1";
    case GateType::Pi: return "pi";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
  }
  return "?";
}

Network::Network() {
  new_node(GateType::Const0, "const0", /*reuse_free=*/false);
  new_node(GateType::Const1, "const1", /*reuse_free=*/false);
}

void Network::reserve(std::size_t nodes, std::size_t edges) {
  packed_.reserve(nodes);
  fanin_off_.reserve(nodes);
  fanin_cnt_.reserve(nodes);
  first_out_.reserve(nodes);
  ref_count_.reserve(nodes);
  po_refs_.reserve(nodes);
  pi_pos_.reserve(nodes);
  names_.reserve(nodes);
  arena_.reserve(edges);
  edge_owner_.reserve(edges);
  next_out_.reserve(edges);
  prev_out_.reserve(edges);
}

NodeId Network::new_node(GateType t, std::string name, bool reuse_free) {
  if (reuse_free && !free_.empty()) {
    const NodeId id = free_.back();
    free_.pop_back();
    packed_[id] = static_cast<uint32_t>(t); // clears dead flag and level
    fanin_off_[id] = 0;
    fanin_cnt_[id] = 0;
    first_out_[id] = kNoNode;
    ref_count_[id] = 0;
    po_refs_[id] = 0;
    pi_pos_[id] = kNoNode;
    names_[id] = std::move(name);
    return id;
  }
  const NodeId id = static_cast<NodeId>(packed_.size());
  packed_.push_back(static_cast<uint32_t>(t));
  fanin_off_.push_back(0);
  fanin_cnt_.push_back(0);
  first_out_.push_back(kNoNode);
  ref_count_.push_back(0);
  po_refs_.push_back(0);
  pi_pos_.push_back(kNoNode);
  names_.push_back(std::move(name));
  return id;
}

void Network::link_edge(uint32_t e) {
  const NodeId t = arena_[e];
  next_out_[e] = first_out_[t];
  prev_out_[e] = kNoNode;
  if (first_out_[t] != kNoNode) prev_out_[first_out_[t]] = e;
  first_out_[t] = e;
  ++ref_count_[t];
}

void Network::unlink_edge(uint32_t e) {
  const NodeId t = arena_[e];
  const uint32_t prev = prev_out_[e];
  const uint32_t next = next_out_[e];
  if (prev != kNoNode) next_out_[prev] = next;
  else first_out_[t] = next;
  if (next != kNoNode) prev_out_[next] = prev;
  assert(ref_count_[t] > 0);
  --ref_count_[t];
}

NodeId Network::add_pi(std::string name) {
  if (name.empty()) name = "x" + std::to_string(pis_.size());
  const NodeId id = new_node(GateType::Pi, std::move(name), /*reuse_free=*/false);
  pi_pos_[id] = static_cast<uint32_t>(pis_.size());
  pis_.push_back(id);
  return id;
}

void Network::validate_gate(GateType type,
                            const std::vector<NodeId>& fanins) const {
  if (type == GateType::Not || type == GateType::Buf) {
    if (fanins.size() != 1)
      throw std::invalid_argument("Network: NOT/BUF take one fanin");
  } else if (type == GateType::Pi || type == GateType::Const0 ||
             type == GateType::Const1) {
    throw std::invalid_argument("Network: use add_pi/constant");
  } else if (fanins.empty()) {
    throw std::invalid_argument("Network: gate needs fanins");
  }
  for (const NodeId f : fanins)
    if (f >= packed_.size() || is_dead(f))
      throw std::invalid_argument("Network: fanin does not exist");
}

NodeId Network::add_gate(GateType type, const std::vector<NodeId>& fanins) {
  validate_gate(type, fanins);
  const NodeId id = new_node(type, {}, /*reuse_free=*/true);
  const uint32_t off = static_cast<uint32_t>(arena_.size());
  fanin_off_[id] = off;
  fanin_cnt_[id] = static_cast<uint32_t>(fanins.size());
  for (std::size_t k = 0; k < fanins.size(); ++k) {
    arena_.push_back(fanins[k]);
    edge_owner_.push_back(id);
    next_out_.push_back(kNoNode);
    prev_out_.push_back(kNoNode);
    link_edge(off + static_cast<uint32_t>(k));
  }
  set_level(id, compute_level(id));
  return id;
}

void Network::add_po(NodeId node, std::string name) {
  assert(node < packed_.size() && !is_dead(node));
  if (name.empty()) name = "z" + std::to_string(pos_.size());
  pos_.push_back(node);
  po_names_.push_back(std::move(name));
  ++po_refs_[node];
}

void Network::retarget_po(std::size_t i, NodeId node) {
  assert(node < packed_.size() && !is_dead(node));
  --po_refs_[pos_[i]];
  pos_[i] = node;
  ++po_refs_[node];
}

std::size_t Network::pi_index(NodeId n) const {
  if (n >= packed_.size() || type(n) != GateType::Pi)
    throw std::invalid_argument("Network::pi_index: not a PI");
  return pi_pos_[n];
}

uint32_t Network::compute_level(NodeId n) const {
  uint32_t lv = 0;
  const uint32_t off = fanin_off_[n];
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k)
    lv = std::max(lv, level(arena_[off + k]) + 1);
  return lv;
}

void Network::repair_levels_from(NodeId n) {
  std::vector<NodeId> wl{n};
  while (!wl.empty()) {
    const NodeId m = wl.back();
    wl.pop_back();
    const uint32_t lv = compute_level(m);
    if (lv == level(m)) continue;
    set_level(m, lv);
    for (uint32_t e = first_out_[m]; e != kNoNode; e = next_out_[e])
      wl.push_back(edge_owner_[e]);
  }
}

void Network::rewrite_gate(NodeId n, GateType type,
                           const std::vector<NodeId>& fanins) {
  assert(n >= 2 && n < packed_.size());
  assert(this->type(n) != GateType::Pi);
  validate_gate(type, fanins);

  const uint32_t old_off = fanin_off_[n];
  const uint32_t old_cnt = fanin_cnt_[n];
  for (uint32_t k = 0; k < old_cnt; ++k) unlink_edge(old_off + k);

  uint32_t off;
  if (fanins.size() <= old_cnt) {
    // Shrinking (or equal) rewrite reuses the block in place; the stale
    // tail entries are unlinked and never traversed again.
    off = old_off;
    for (std::size_t k = 0; k < fanins.size(); ++k)
      arena_[off + k] = fanins[k];
  } else {
    // Growing rewrite allocates a fresh block at the arena tail; the old
    // block becomes garbage until compact().
    off = static_cast<uint32_t>(arena_.size());
    for (std::size_t k = 0; k < fanins.size(); ++k) {
      arena_.push_back(fanins[k]);
      edge_owner_.push_back(n);
      next_out_.push_back(kNoNode);
      prev_out_.push_back(kNoNode);
    }
  }
  fanin_off_[n] = off;
  fanin_cnt_[n] = static_cast<uint32_t>(fanins.size());
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) link_edge(off + k);

  set_type(n, type);
  repair_levels_from(n);
}

void Network::recycle(NodeId n) {
  assert(n >= 2 && n < packed_.size());
  if (type(n) == GateType::Pi)
    throw std::invalid_argument("Network::recycle: cannot recycle a PI");
  if (ref_count_[n] != 0 || po_refs_[n] != 0)
    throw std::invalid_argument("Network::recycle: node still referenced");
  if (is_dead(n)) return;
  const uint32_t off = fanin_off_[n];
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) unlink_edge(off + k);
  fanin_cnt_[n] = 0;
  set_dead(n, true);
  free_.push_back(n);
}

std::vector<NodeId> Network::fanout_list(NodeId n) const {
  std::vector<NodeId> out;
  for (uint32_t e = first_out_[n]; e != kNoNode; e = next_out_[e])
    out.push_back(edge_owner_[e]);
  return out;
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<uint8_t> state(packed_.size(), 0); // 0 new, 1 open, 2 done
  std::vector<NodeId> order;
  order.reserve(packed_.size());
  // Iterative DFS to avoid stack overflow on deep chains. The visit order
  // (constants, PIs, then POs, fanins first-to-last) is load-bearing: it
  // keeps the emitted order byte-identical to the pre-SoA implementation,
  // which downstream passes' golden results depend on.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  const auto visit = [&](NodeId root) {
    if (state[root] == 2) return;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [n, idx] = stack.back();
      if (state[n] == 2) { stack.pop_back(); continue; }
      state[n] = 1;
      if (idx < fanin_cnt_[n]) {
        const NodeId f = arena_[fanin_off_[n] + idx++];
        if (state[f] == 0) stack.emplace_back(f, 0);
        else if (state[f] == 1)
          throw std::logic_error("Network: cycle detected");
      } else {
        state[n] = 2;
        order.push_back(n);
        stack.pop_back();
      }
    }
  };
  visit(kConst0);
  visit(kConst1);
  for (const NodeId pi : pis_) visit(pi);
  for (const NodeId po : pos_) visit(po);
  return order;
}

std::vector<bool> Network::live_mask() const {
  std::vector<bool> live(packed_.size(), false);
  std::vector<NodeId> stack(pos_.begin(), pos_.end());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = true;
    const uint32_t off = fanin_off_[n];
    for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) stack.push_back(arena_[off + k]);
  }
  for (const NodeId pi : pis_) live[pi] = true;
  live[kConst0] = live[kConst1] = true;
  return live;
}

std::vector<uint32_t> Network::fanout_counts() const {
  // Served from the maintained fanout lists; only live (PO-reachable)
  // readers count, exactly as the historical full-scan implementation.
  std::vector<uint32_t> counts(packed_.size(), 0);
  const auto live = live_mask();
  for (NodeId n = 0; n < packed_.size(); ++n) {
    for (uint32_t e = first_out_[n]; e != kNoNode; e = next_out_[e])
      if (live[edge_owner_[e]]) ++counts[n];
  }
  for (const NodeId po : pos_) ++counts[po];
  return counts;
}

std::vector<NodeId> Network::compact() {
  const auto live = live_mask();
  const auto order = topo_order();

  Network out;
  out.reserve(packed_.size(), arena_.size());
  std::vector<NodeId> remap(packed_.size(), kNoNode);
  remap[kConst0] = kConst0;
  remap[kConst1] = kConst1;
  out.names_[kConst0] = names_[kConst0];
  out.names_[kConst1] = names_[kConst1];
  for (const NodeId pi : pis_) remap[pi] = out.add_pi(names_[pi]);
  std::vector<NodeId> fi;
  for (const NodeId n : order) {
    if (!live[n]) continue;
    const GateType t = type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    fi.clear();
    const uint32_t off = fanin_off_[n];
    for (uint32_t k = 0; k < fanin_cnt_[n]; ++k)
      fi.push_back(remap[arena_[off + k]]);
    remap[n] = out.add_gate(t, fi);
    if (!names_[n].empty()) out.names_[remap[n]] = names_[n];
  }
  for (std::size_t i = 0; i < pos_.size(); ++i)
    out.add_po(remap[pos_[i]], po_names_[i]);
  *this = std::move(out);
  return remap;
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == pis_.size());
  std::vector<bool> value(packed_.size(), false);
  value[kConst1] = true;
  for (std::size_t i = 0; i < pis_.size(); ++i) value[pis_[i]] = pi_values[i];
  for (const NodeId n : topo_order()) {
    const FaninSpan fi = fanins(n);
    switch (type(n)) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf: value[n] = value[fi[0]]; break;
      case GateType::Not: value[n] = !value[fi[0]]; break;
      case GateType::And: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = v;
        break;
      }
      case GateType::Nand: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = !v;
        break;
      }
      case GateType::Or: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = v;
        break;
      }
      case GateType::Nor: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = !v;
        break;
      }
      case GateType::Xor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = v;
        break;
      }
      case GateType::Xnor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = !v;
        break;
      }
    }
  }
  std::vector<bool> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) out[i] = value[pos_[i]];
  return out;
}

} // namespace rmsyn
