#include "network/network.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/faultplan.hpp"

namespace rmsyn {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Const0: return "const0";
    case GateType::Const1: return "const1";
    case GateType::Pi: return "pi";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
  }
  return "?";
}

Network::Network() {
  new_node(GateType::Const0, "const0", /*reuse_free=*/false);
  new_node(GateType::Const1, "const1", /*reuse_free=*/false);
}

void Network::reserve(std::size_t nodes, std::size_t edges) {
  packed_.reserve(nodes);
  fanin_off_.reserve(nodes);
  fanin_cnt_.reserve(nodes);
  first_out_.reserve(nodes);
  ref_count_.reserve(nodes);
  po_refs_.reserve(nodes);
  pi_pos_.reserve(nodes);
  names_.reserve(nodes);
  arena_.reserve(edges);
  edge_owner_.reserve(edges);
  next_out_.reserve(edges);
  prev_out_.reserve(edges);
}

NodeId Network::new_node(GateType t, std::string name, bool reuse_free) {
  fault_count_node(); // FaultPlan arena hook: may throw RmsynError
  if (reuse_free && !free_.empty()) {
    const NodeId id = free_.back();
    free_.pop_back();
    packed_[id] = static_cast<uint32_t>(t); // clears dead flag and level
    fanin_off_[id] = 0;
    fanin_cnt_[id] = 0;
    first_out_[id] = kNoNode;
    ref_count_[id] = 0;
    po_refs_[id] = 0;
    pi_pos_[id] = kNoNode;
    names_[id] = std::move(name);
    return id;
  }
  const NodeId id = static_cast<NodeId>(packed_.size());
  packed_.push_back(static_cast<uint32_t>(t));
  fanin_off_.push_back(0);
  fanin_cnt_.push_back(0);
  first_out_.push_back(kNoNode);
  ref_count_.push_back(0);
  po_refs_.push_back(0);
  pi_pos_.push_back(kNoNode);
  names_.push_back(std::move(name));
  return id;
}

void Network::link_edge(uint32_t e) {
  const NodeId t = arena_[e];
  next_out_[e] = first_out_[t];
  prev_out_[e] = kNoNode;
  if (first_out_[t] != kNoNode) prev_out_[first_out_[t]] = e;
  first_out_[t] = e;
  ++ref_count_[t];
}

void Network::unlink_edge(uint32_t e) {
  const NodeId t = arena_[e];
  const uint32_t prev = prev_out_[e];
  const uint32_t next = next_out_[e];
  if (prev != kNoNode) next_out_[prev] = next;
  else first_out_[t] = next;
  if (next != kNoNode) prev_out_[next] = prev;
  assert(ref_count_[t] > 0);
  --ref_count_[t];
}

NodeId Network::add_pi(std::string name) {
  if (name.empty()) name = "x" + std::to_string(pis_.size());
  const NodeId id = new_node(GateType::Pi, std::move(name), /*reuse_free=*/false);
  pi_pos_[id] = static_cast<uint32_t>(pis_.size());
  pis_.push_back(id);
  return id;
}

void Network::validate_gate(GateType type,
                            const std::vector<NodeId>& fanins) const {
  if (type == GateType::Not || type == GateType::Buf) {
    if (fanins.size() != 1)
      throw std::invalid_argument("Network: NOT/BUF take one fanin");
  } else if (type == GateType::Pi || type == GateType::Const0 ||
             type == GateType::Const1) {
    throw std::invalid_argument("Network: use add_pi/constant");
  } else if (fanins.empty()) {
    throw std::invalid_argument("Network: gate needs fanins");
  }
  for (const NodeId f : fanins)
    if (f >= packed_.size() || is_dead(f))
      throw std::invalid_argument("Network: fanin does not exist");
}

NodeId Network::add_gate(GateType type, const std::vector<NodeId>& fanins) {
  validate_gate(type, fanins);
  const NodeId id = new_node(type, {}, /*reuse_free=*/true);
  const uint32_t off = static_cast<uint32_t>(arena_.size());
  fanin_off_[id] = off;
  fanin_cnt_[id] = static_cast<uint32_t>(fanins.size());
  for (std::size_t k = 0; k < fanins.size(); ++k) {
    arena_.push_back(fanins[k]);
    edge_owner_.push_back(id);
    next_out_.push_back(kNoNode);
    prev_out_.push_back(kNoNode);
    link_edge(off + static_cast<uint32_t>(k));
  }
  set_level(id, compute_level(id));
  return id;
}

void Network::add_po(NodeId node, std::string name) {
  assert(node < packed_.size() && !is_dead(node));
  if (name.empty()) name = "z" + std::to_string(pos_.size());
  pos_.push_back(node);
  po_names_.push_back(std::move(name));
  ++po_refs_[node];
}

void Network::retarget_po(std::size_t i, NodeId node) {
  assert(node < packed_.size() && !is_dead(node));
  --po_refs_[pos_[i]];
  pos_[i] = node;
  ++po_refs_[node];
}

std::size_t Network::pi_index(NodeId n) const {
  if (n >= packed_.size() || type(n) != GateType::Pi)
    throw std::invalid_argument("Network::pi_index: not a PI");
  return pi_pos_[n];
}

uint32_t Network::compute_level(NodeId n) const {
  uint32_t lv = 0;
  const uint32_t off = fanin_off_[n];
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k)
    lv = std::max(lv, level(arena_[off + k]) + 1);
  return lv;
}

void Network::repair_levels_from(NodeId n) {
  std::vector<NodeId> wl{n};
  while (!wl.empty()) {
    const NodeId m = wl.back();
    wl.pop_back();
    const uint32_t lv = compute_level(m);
    if (lv == level(m)) continue;
    set_level(m, lv);
    for (uint32_t e = first_out_[m]; e != kNoNode; e = next_out_[e])
      wl.push_back(edge_owner_[e]);
  }
}

void Network::rewrite_gate(NodeId n, GateType type,
                           const std::vector<NodeId>& fanins) {
  assert(n >= 2 && n < packed_.size());
  assert(this->type(n) != GateType::Pi);
  validate_gate(type, fanins);

  const uint32_t old_off = fanin_off_[n];
  const uint32_t old_cnt = fanin_cnt_[n];
  for (uint32_t k = 0; k < old_cnt; ++k) unlink_edge(old_off + k);

  uint32_t off;
  if (fanins.size() <= old_cnt) {
    // Shrinking (or equal) rewrite reuses the block in place; the stale
    // tail entries are unlinked and never traversed again.
    off = old_off;
    for (std::size_t k = 0; k < fanins.size(); ++k)
      arena_[off + k] = fanins[k];
  } else {
    // Growing rewrite allocates a fresh block at the arena tail; the old
    // block becomes garbage until compact().
    off = static_cast<uint32_t>(arena_.size());
    for (std::size_t k = 0; k < fanins.size(); ++k) {
      arena_.push_back(fanins[k]);
      edge_owner_.push_back(n);
      next_out_.push_back(kNoNode);
      prev_out_.push_back(kNoNode);
    }
  }
  fanin_off_[n] = off;
  fanin_cnt_[n] = static_cast<uint32_t>(fanins.size());
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) link_edge(off + k);

  set_type(n, type);
  repair_levels_from(n);
}

void Network::recycle(NodeId n) {
  assert(n >= 2 && n < packed_.size());
  if (type(n) == GateType::Pi)
    throw std::invalid_argument("Network::recycle: cannot recycle a PI");
  if (ref_count_[n] != 0 || po_refs_[n] != 0)
    throw std::invalid_argument("Network::recycle: node still referenced");
  if (is_dead(n)) return;
  const uint32_t off = fanin_off_[n];
  for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) unlink_edge(off + k);
  fanin_cnt_[n] = 0;
  set_dead(n, true);
  free_.push_back(n);
}

std::vector<NodeId> Network::fanout_list(NodeId n) const {
  std::vector<NodeId> out;
  for (uint32_t e = first_out_[n]; e != kNoNode; e = next_out_[e])
    out.push_back(edge_owner_[e]);
  return out;
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<uint8_t> state(packed_.size(), 0); // 0 new, 1 open, 2 done
  std::vector<NodeId> order;
  order.reserve(packed_.size());
  // Iterative DFS to avoid stack overflow on deep chains. The visit order
  // (constants, PIs, then POs, fanins first-to-last) is load-bearing: it
  // keeps the emitted order byte-identical to the pre-SoA implementation,
  // which downstream passes' golden results depend on.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  const auto visit = [&](NodeId root) {
    if (state[root] == 2) return;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [n, idx] = stack.back();
      if (state[n] == 2) { stack.pop_back(); continue; }
      state[n] = 1;
      if (idx < fanin_cnt_[n]) {
        const NodeId f = arena_[fanin_off_[n] + idx++];
        if (state[f] == 0) stack.emplace_back(f, 0);
        else if (state[f] == 1)
          throw std::logic_error("Network: cycle detected");
      } else {
        state[n] = 2;
        order.push_back(n);
        stack.pop_back();
      }
    }
  };
  visit(kConst0);
  visit(kConst1);
  for (const NodeId pi : pis_) visit(pi);
  for (const NodeId po : pos_) visit(po);
  return order;
}

std::vector<bool> Network::live_mask() const {
  std::vector<bool> live(packed_.size(), false);
  std::vector<NodeId> stack(pos_.begin(), pos_.end());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = true;
    const uint32_t off = fanin_off_[n];
    for (uint32_t k = 0; k < fanin_cnt_[n]; ++k) stack.push_back(arena_[off + k]);
  }
  for (const NodeId pi : pis_) live[pi] = true;
  live[kConst0] = live[kConst1] = true;
  return live;
}

std::vector<uint32_t> Network::fanout_counts() const {
  // Served from the maintained fanout lists; only live (PO-reachable)
  // readers count, exactly as the historical full-scan implementation.
  std::vector<uint32_t> counts(packed_.size(), 0);
  const auto live = live_mask();
  for (NodeId n = 0; n < packed_.size(); ++n) {
    for (uint32_t e = first_out_[n]; e != kNoNode; e = next_out_[e])
      if (live[edge_owner_[e]]) ++counts[n];
  }
  for (const NodeId po : pos_) ++counts[po];
  return counts;
}

std::vector<NodeId> Network::compact() {
  RMSYN_SPAN("network-compact");
  const auto live = live_mask();
  const auto order = topo_order();

  Network out;
  out.reserve(packed_.size(), arena_.size());
  std::vector<NodeId> remap(packed_.size(), kNoNode);
  remap[kConst0] = kConst0;
  remap[kConst1] = kConst1;
  out.names_[kConst0] = names_[kConst0];
  out.names_[kConst1] = names_[kConst1];
  for (const NodeId pi : pis_) remap[pi] = out.add_pi(names_[pi]);
  std::vector<NodeId> fi;
  for (const NodeId n : order) {
    if (!live[n]) continue;
    const GateType t = type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    fi.clear();
    const uint32_t off = fanin_off_[n];
    for (uint32_t k = 0; k < fanin_cnt_[n]; ++k)
      fi.push_back(remap[arena_[off + k]]);
    remap[n] = out.add_gate(t, fi);
    if (!names_[n].empty()) out.names_[remap[n]] = names_[n];
  }
  for (std::size_t i = 0; i < pos_.size(); ++i)
    out.add_po(remap[pos_[i]], po_names_[i]);
  *this = std::move(out);
  return remap;
}

// --- deep invariant checker --------------------------------------------------

namespace {
std::atomic<bool> g_paranoid{false};
} // namespace

void set_paranoid_checks(bool on) {
  g_paranoid.store(on, std::memory_order_relaxed);
}

bool paranoid_checks_enabled() {
  return g_paranoid.load(std::memory_order_relaxed);
}

void maybe_check_invariants(const Network& net, const char* where) {
  if (paranoid_checks_enabled()) net.assert_invariants(where);
}

std::string InvariantViolation::to_string() const {
  std::string s = invariant;
  if (node != Network::kNoNode) s += " at node " + std::to_string(node);
  if (!detail.empty()) s += ": " + detail;
  return s;
}

std::vector<InvariantViolation> Network::check_invariants(
    std::size_t max_violations) const {
  std::vector<InvariantViolation> out;
  const std::size_t n_nodes = packed_.size();
  const std::size_t n_edges = arena_.size();
  const auto report = [&](const char* invariant, NodeId node,
                          std::string detail) {
    if (out.size() < max_violations)
      out.push_back({invariant, node, std::move(detail)});
  };
  const auto full = [&] { return out.size() >= max_violations; };

  // Constant slots are part of every network's identity.
  if (n_nodes < 2 || type(kConst0) != GateType::Const0 ||
      type(kConst1) != GateType::Const1)
    report("arena-span", kNoNode, "constant slots 0/1 missing or retyped");

  // arena-span: every fanin block inside the arena, owned by its node,
  // pointing at existing live nodes; dead nodes fully cleared.
  for (NodeId n = 0; n < n_nodes && !full(); ++n) {
    if (is_dead(n)) {
      if (fanin_cnt_[n] != 0)
        report("free-list", n, "dead node keeps " +
                                   std::to_string(fanin_cnt_[n]) + " fanins");
      continue;
    }
    const uint64_t off = fanin_off_[n];
    const uint64_t cnt = fanin_cnt_[n];
    if (off + cnt > n_edges) {
      report("arena-span", n,
             "fanin block [" + std::to_string(off) + ", " +
                 std::to_string(off + cnt) + ") exceeds arena size " +
                 std::to_string(n_edges));
      continue;
    }
    const GateType t = type(n);
    const bool leaf = t == GateType::Pi || t == GateType::Const0 ||
                      t == GateType::Const1;
    if (leaf && cnt != 0)
      report("arena-span", n, "PI/constant with fanins");
    if ((t == GateType::Not || t == GateType::Buf) && cnt != 1)
      report("arena-span", n, "NOT/BUF arity " + std::to_string(cnt));
    if (!leaf && t != GateType::Not && t != GateType::Buf && cnt == 0)
      report("arena-span", n, "gate with no fanins");
    for (uint64_t k = 0; k < cnt && !full(); ++k) {
      const uint32_t e = static_cast<uint32_t>(off + k);
      if (edge_owner_[e] != n)
        report("arena-span", n,
               "edge " + std::to_string(e) + " owned by node " +
                   std::to_string(edge_owner_[e]));
      const NodeId f = arena_[e];
      if (f >= n_nodes)
        report("arena-span", n, "fanin " + std::to_string(f) + " out of range");
      else if (is_dead(f))
        report("arena-span", n, "fanin " + std::to_string(f) + " is dead");
    }
  }

  // fanout-chain: walk each maintained chain, checking link symmetry,
  // target identity, liveness of member edges, and length == ref_count.
  std::vector<uint8_t> edge_seen(n_edges, 0);
  for (NodeId n = 0; n < n_nodes && !full(); ++n) {
    uint64_t len = 0;
    uint32_t prev = kNoNode;
    uint32_t e = first_out_[n];
    bool broken = false;
    while (e != kNoNode) {
      if (e >= n_edges) {
        report("fanout-chain", n, "edge " + std::to_string(e) + " out of range");
        broken = true;
        break;
      }
      if (edge_seen[e]) {
        report("fanout-chain", n,
               "edge " + std::to_string(e) + " linked twice (chain cycle "
               "or shared edge)");
        broken = true;
        break;
      }
      edge_seen[e] = 1;
      if (arena_[e] != n) {
        report("fanout-chain", n,
               "chain edge " + std::to_string(e) + " targets node " +
                   std::to_string(arena_[e]));
        broken = true;
        break;
      }
      if (prev_out_[e] != prev) {
        report("fanout-chain", n,
               "edge " + std::to_string(e) + " prev link " +
                   (prev_out_[e] == kNoNode ? std::string("none")
                                            : std::to_string(prev_out_[e])) +
                   " != expected " +
                   (prev == kNoNode ? std::string("none")
                                    : std::to_string(prev)));
        broken = true;
        break;
      }
      const NodeId owner = edge_owner_[e];
      if (owner >= n_nodes || is_dead(owner) ||
          e < fanin_off_[owner] ||
          e >= static_cast<uint64_t>(fanin_off_[owner]) + fanin_cnt_[owner]) {
        report("fanout-chain", n,
               "chain edge " + std::to_string(e) +
                   " is stale (outside its owner's live fanin block)");
        broken = true;
        break;
      }
      ++len;
      prev = e;
      e = next_out_[e];
    }
    if (!broken && len != ref_count_[n])
      report("ref-count", n,
             "fanout chain has " + std::to_string(len) +
                 " edges, ref_count says " + std::to_string(ref_count_[n]));
  }

  // ref-count / po-ref: maintained counters vs a full recount.
  std::vector<uint32_t> ref(n_nodes, 0), po_ref(n_nodes, 0);
  for (NodeId n = 0; n < n_nodes; ++n) {
    if (is_dead(n)) continue;
    const uint64_t off = fanin_off_[n];
    const uint64_t cnt = fanin_cnt_[n];
    if (off + cnt > n_edges) continue; // already reported above
    for (uint64_t k = 0; k < cnt; ++k)
      if (arena_[off + k] < n_nodes) ++ref[arena_[off + k]];
  }
  for (const NodeId po : pos_)
    if (po < n_nodes) ++po_ref[po];
    else report("po-ref", po, "primary output out of range");
  for (NodeId n = 0; n < n_nodes && !full(); ++n) {
    if (ref_count_[n] != ref[n])
      report("ref-count", n,
             "maintained " + std::to_string(ref_count_[n]) + ", recomputed " +
                 std::to_string(ref[n]));
    if (po_refs_[n] != po_ref[n])
      report("po-ref", n,
             "maintained " + std::to_string(po_refs_[n]) + ", recomputed " +
                 std::to_string(po_ref[n]));
    if (po_ref[n] != 0 && is_dead(n))
      report("po-ref", n, "primary output points at a dead node");
  }

  // level: packed level vs recomputation (0 for PIs/constants).
  for (NodeId n = 0; n < n_nodes && !full(); ++n) {
    if (is_dead(n)) continue;
    if (static_cast<uint64_t>(fanin_off_[n]) + fanin_cnt_[n] > n_edges)
      continue;
    bool fanins_ok = true;
    for (uint64_t k = 0; k < fanin_cnt_[n]; ++k)
      fanins_ok &= arena_[fanin_off_[n] + k] < n_nodes;
    if (!fanins_ok) continue;
    const uint32_t lv = compute_level(n);
    if (level(n) != lv)
      report("level", n,
             "maintained " + std::to_string(level(n)) + ", recomputed " +
                 std::to_string(lv));
  }

  // acyclic: DFS over live fanins (a cycle would also wedge topo_order()).
  {
    std::vector<uint8_t> state(n_nodes, 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<NodeId, uint64_t>> stack;
    for (NodeId root = 0; root < n_nodes && !full(); ++root) {
      if (is_dead(root) || state[root] != 0) continue;
      stack.emplace_back(root, 0);
      while (!stack.empty() && !full()) {
        auto& [n, idx] = stack.back();
        state[n] = 1;
        const uint64_t off = fanin_off_[n];
        const uint64_t cnt =
            off + fanin_cnt_[n] <= n_edges ? fanin_cnt_[n] : 0;
        if (idx < cnt) {
          const NodeId f = arena_[off + idx++];
          if (f >= n_nodes || is_dead(f)) continue; // reported above
          if (state[f] == 1)
            report("acyclic", n,
                   "fanin cycle through node " + std::to_string(f));
          else if (state[f] == 0)
            stack.emplace_back(f, 0);
        } else {
          state[n] = 2;
          stack.pop_back();
        }
      }
      stack.clear();
    }
  }

  // free-list: the free list and the dead flags must agree exactly.
  {
    std::vector<uint8_t> listed(n_nodes, 0);
    for (const NodeId f : free_) {
      if (f >= n_nodes) {
        report("free-list", f, "free-list id out of range");
        continue;
      }
      if (listed[f])
        report("free-list", f, "listed twice in the free list");
      listed[f] = 1;
      if (!is_dead(f))
        report("free-list", f, "free-list node is not flagged dead");
      if (f < 2 || type(f) == GateType::Pi)
        report("free-list", f, "PI/constant on the free list");
      if (ref_count_[f] != 0 || po_refs_[f] != 0)
        report("free-list", f, "dead node still referenced");
      if (first_out_[f] != kNoNode)
        report("free-list", f, "dead node keeps a fanout chain");
    }
    for (NodeId n = 0; n < n_nodes && !full(); ++n)
      if (is_dead(n) && !listed[n])
        report("free-list", n, "dead node missing from the free list");
  }

  // pi-index: pis_ and the pi_pos_ column are inverse bijections.
  for (std::size_t i = 0; i < pis_.size() && !full(); ++i) {
    const NodeId pi = pis_[i];
    if (pi >= n_nodes) {
      report("pi-index", pi, "PI id out of range");
      continue;
    }
    if (type(pi) != GateType::Pi)
      report("pi-index", pi, "pis_[" + std::to_string(i) + "] is not a PI");
    if (is_dead(pi)) report("pi-index", pi, "PI flagged dead");
    if (pi_pos_[pi] != i)
      report("pi-index", pi,
             "pi_pos says " + std::to_string(pi_pos_[pi]) + ", pi order says " +
                 std::to_string(i));
  }
  for (NodeId n = 0; n < n_nodes && !full(); ++n) {
    if (is_dead(n)) continue;
    if (type(n) == GateType::Pi) {
      if (pi_pos_[n] >= pis_.size() || pis_[pi_pos_[n]] != n)
        report("pi-index", n, "PI not listed at its pi_pos");
    } else if (pi_pos_[n] != kNoNode) {
      report("pi-index", n, "non-PI carries a pi_pos");
    }
  }

  return out;
}

void Network::assert_invariants(const char* where) const {
  const auto violations = check_invariants();
  if (violations.empty()) return;
  std::string msg = std::string(where) + ": network invariant violated: " +
                    violations.front().to_string();
  if (violations.size() > 1)
    msg += " (+" + std::to_string(violations.size() - 1) + " more)";
  throw RmsynError(ErrorCode::InvariantViolation, msg);
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == pis_.size());
  std::vector<bool> value(packed_.size(), false);
  value[kConst1] = true;
  for (std::size_t i = 0; i < pis_.size(); ++i) value[pis_[i]] = pi_values[i];
  for (const NodeId n : topo_order()) {
    const FaninSpan fi = fanins(n);
    switch (type(n)) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf: value[n] = value[fi[0]]; break;
      case GateType::Not: value[n] = !value[fi[0]]; break;
      case GateType::And: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = v;
        break;
      }
      case GateType::Nand: {
        bool v = true;
        for (const NodeId f : fi) v = v && value[f];
        value[n] = !v;
        break;
      }
      case GateType::Or: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = v;
        break;
      }
      case GateType::Nor: {
        bool v = false;
        for (const NodeId f : fi) v = v || value[f];
        value[n] = !v;
        break;
      }
      case GateType::Xor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = v;
        break;
      }
      case GateType::Xnor: {
        bool v = false;
        for (const NodeId f : fi) v = v != value[f];
        value[n] = !v;
        break;
      }
    }
  }
  std::vector<bool> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) out[i] = value[pos_[i]];
  return out;
}

} // namespace rmsyn
