#include "network/io.hpp"

#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rmsyn {

namespace {

std::string node_label(const Network& net, NodeId n) {
  if (net.type(n) == GateType::Pi) return net.name(n);
  if (n == Network::kConst0) return "gnd";
  if (n == Network::kConst1) return "vdd";
  return "n" + std::to_string(n);
}

} // namespace

void write_blif(std::ostream& out, const Network& net,
                const std::string& model_name) {
  out << ".model " << model_name << "\n.inputs";
  for (const NodeId pi : net.pis()) out << ' ' << net.name(pi);
  out << "\n.outputs";
  for (std::size_t i = 0; i < net.po_count(); ++i) out << ' ' << net.po_name(i);
  out << "\n";

  const auto live = net.live_mask();
  bool used_gnd = false, used_vdd = false;
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    for (const NodeId f : net.fanins(n)) {
      used_gnd |= f == Network::kConst0;
      used_vdd |= f == Network::kConst1;
    }
  }
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    used_gnd |= net.po(i) == Network::kConst0;
    used_vdd |= net.po(i) == Network::kConst1;
  }
  if (used_gnd) out << ".names gnd\n";
  if (used_vdd) out << ".names vdd\n1\n";

  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const auto& fi = net.fanins(n);
    out << ".names";
    for (const NodeId f : fi) out << ' ' << node_label(net, f);
    out << ' ' << node_label(net, n) << "\n";
    const std::size_t k = fi.size();
    switch (t) {
      case GateType::Buf: out << "1 1\n"; break;
      case GateType::Not: out << "0 1\n"; break;
      case GateType::And: out << std::string(k, '1') << " 1\n"; break;
      case GateType::Nand:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '0';
          out << row << " 1\n";
        }
        break;
      case GateType::Or:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          out << row << " 1\n";
        }
        break;
      case GateType::Nor: out << std::string(k, '0') << " 1\n"; break;
      case GateType::Xor:
        if (k != 2) throw std::invalid_argument("write_blif: XOR arity > 2");
        out << "01 1\n10 1\n";
        break;
      case GateType::Xnor:
        if (k != 2) throw std::invalid_argument("write_blif: XNOR arity > 2");
        out << "00 1\n11 1\n";
        break;
      default: break;
    }
  }
  // Output drivers: alias PO names onto their source nodes.
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    out << ".names " << node_label(net, net.po(i)) << ' ' << net.po_name(i)
        << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& net, const std::string& model_name) {
  std::ostringstream ss;
  write_blif(ss, net, model_name);
  return ss.str();
}

namespace {

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

struct BlifNames {
  std::vector<std::string> inputs; // signal names
  std::string output;
  std::vector<std::string> rows; // cube rows "10- 1"
  std::vector<int> row_lines;    // source line of each row (diagnostics)
  int line = 0;                  // source line of the .names header
};

[[noreturn]] void blif_error(int lineno, const std::string& what) {
  throw std::runtime_error("read_blif: line " + std::to_string(lineno) + ": " +
                           what);
}

} // namespace

Network read_blif(std::istream& in) {
  std::vector<std::string> input_names, output_names;
  std::vector<BlifNames> blocks;

  std::string line, pending;
  int phys_line = 0;    // physical lines consumed so far
  int logical_line = 0; // line the current logical line started on
  const auto next_logical_line = [&](std::string& out_line) -> bool {
    out_line.clear();
    logical_line = 0;
    while (std::getline(in, line)) {
      ++phys_line;
      if (logical_line == 0) logical_line = phys_line;
      if (const auto pos = line.find('#'); pos != std::string::npos)
        line.erase(pos);
      while (!line.empty() &&
             std::isspace(static_cast<unsigned char>(line.back())))
        line.pop_back();
      if (!line.empty() && line.back() == '\\') {
        // Continuation: accumulate and keep reading.
        line.pop_back();
        out_line += line + " ";
        continue;
      }
      out_line += line;
      if (!out_line.empty()) return true;
      logical_line = 0; // blank line: restart the span
    }
    return !out_line.empty();
  };

  BlifNames* current = nullptr;
  while (next_logical_line(pending)) {
    auto toks = split_tokens(pending);
    if (toks.empty()) continue;
    if (toks[0] == ".model") {
      current = nullptr;
    } else if (toks[0] == ".inputs") {
      input_names.insert(input_names.end(), toks.begin() + 1, toks.end());
      current = nullptr;
    } else if (toks[0] == ".outputs") {
      output_names.insert(output_names.end(), toks.begin() + 1, toks.end());
      current = nullptr;
    } else if (toks[0] == ".names") {
      if (toks.size() < 2) blif_error(logical_line, ".names without output");
      blocks.emplace_back();
      current = &blocks.back();
      current->inputs.assign(toks.begin() + 1, toks.end() - 1);
      current->output = toks.back();
      current->line = logical_line;
    } else if (toks[0] == ".end") {
      break;
    } else if (toks[0] == ".latch" || toks[0] == ".subckt" ||
               toks[0] == ".gate") {
      blif_error(logical_line,
                 "sequential/hierarchical BLIF not supported: " + toks[0]);
    } else if (toks[0][0] == '.') {
      // Other directives (.default_input_arrival etc.) are ignored.
      current = nullptr;
    } else {
      if (current == nullptr)
        blif_error(logical_line, "cube row outside .names: " + pending);
      current->rows.push_back(pending);
      current->row_lines.push_back(logical_line);
    }
  }

  Network net;
  std::map<std::string, NodeId> signal;
  for (const auto& n : input_names) {
    if (signal.count(n))
      throw std::runtime_error("read_blif: duplicate input " + n);
    signal[n] = net.add_pi(n);
  }
  // Reject .names blocks that would silently shadow a PI or another block.
  for (const auto& b : blocks) {
    if (signal.count(b.output))
      blif_error(b.line, ".names redefines input " + b.output);
  }
  {
    std::map<std::string, int> driver_line;
    for (const auto& b : blocks) {
      const auto [it, fresh] = driver_line.emplace(b.output, b.line);
      if (!fresh)
        blif_error(b.line, ".names redefines " + b.output +
                               " (first defined at line " +
                               std::to_string(it->second) + ")");
    }
  }

  // .names blocks may be out of order; resolve iteratively.
  std::vector<bool> done(blocks.size(), false);
  std::size_t remaining = blocks.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      if (done[bi]) continue;
      const BlifNames& b = blocks[bi];
      bool ready = true;
      for (const auto& inp : b.inputs)
        if (!signal.count(inp)) { ready = false; break; }
      if (!ready) continue;

      NodeId node;
      if (b.inputs.empty()) {
        // Constant: a row "1" means const1; no rows means const0.
        bool value = false;
        for (const auto& row : b.rows) {
          const auto toks = split_tokens(row);
          if (!toks.empty() && toks.back() == "1") value = true;
        }
        node = net.constant(value);
      } else {
        std::vector<NodeId> terms;
        bool complemented_rows = false, true_rows = false;
        for (std::size_t ri = 0; ri < b.rows.size(); ++ri) {
          const std::string& row = b.rows[ri];
          const int row_line = b.row_lines[ri];
          const auto toks = split_tokens(row);
          if (toks.size() != 2)
            blif_error(row_line, "expected '<mask> <value>', got " +
                                     std::to_string(toks.size()) +
                                     " fields: " + row);
          const std::string& mask = toks[0];
          if (mask.size() != b.inputs.size())
            blif_error(row_line, "mask is " + std::to_string(mask.size()) +
                                     " wide, .names has " +
                                     std::to_string(b.inputs.size()) +
                                     " inputs: " + row);
          if (toks[1] != "1" && toks[1] != "0")
            blif_error(row_line, "output value must be 0 or 1: " + row);
          (toks[1] == "1" ? true_rows : complemented_rows) = true;
          std::vector<NodeId> lits;
          for (std::size_t i = 0; i < mask.size(); ++i) {
            const NodeId src = signal.at(b.inputs[i]);
            if (mask[i] == '1') lits.push_back(src);
            else if (mask[i] == '0') lits.push_back(net.add_not(src));
            else if (mask[i] != '-')
              blif_error(row_line, std::string("bad cube character '") +
                                       mask[i] + "': " + row);
          }
          if (lits.empty()) terms.push_back(Network::kConst1);
          else if (lits.size() == 1) terms.push_back(lits[0]);
          else terms.push_back(net.add_gate(GateType::And, std::move(lits)));
        }
        if (true_rows && complemented_rows)
          blif_error(b.line, "mixed-phase .names block for " + b.output);
        if (terms.empty()) node = Network::kConst0;
        else if (terms.size() == 1) node = terms[0];
        else node = net.add_gate(GateType::Or, std::move(terms));
        if (complemented_rows) node = net.add_not(node);
      }
      signal[b.output] = node;
      done[bi] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0)
    throw std::runtime_error("read_blif: unresolved (cyclic?) .names blocks");

  for (const auto& n : output_names) {
    const auto it = signal.find(n);
    if (it == signal.end())
      throw std::runtime_error("read_blif: undriven output " + n);
    net.add_po(it->second, n);
  }
  return net;
}

Network read_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return read_blif(ss);
}

std::string to_dot(const Network& net, const std::string& name) {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n  rankdir=BT;\n";
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    const char* shape = t == GateType::Pi ? "box" : "ellipse";
    out << "  n" << n << " [label=\""
        << (t == GateType::Pi ? net.name(n) : gate_type_name(t)) << "\", shape="
        << shape << "];\n";
    for (const NodeId f : net.fanins(n))
      out << "  n" << f << " -> n" << n << ";\n";
  }
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    out << "  po" << i << " [label=\"" << net.po_name(i)
        << "\", shape=invtriangle];\n";
    out << "  n" << net.po(i) << " -> po" << i << ";\n";
  }
  out << "}\n";
  return out.str();
}

} // namespace rmsyn
