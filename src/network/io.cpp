#include "network/io.hpp"

#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace rmsyn {

namespace {

std::string node_label(const Network& net, NodeId n) {
  if (net.type(n) == GateType::Pi) return net.name(n);
  if (n == Network::kConst0) return "gnd";
  if (n == Network::kConst1) return "vdd";
  return "n" + std::to_string(n);
}

} // namespace

void write_blif(std::ostream& out, const Network& net,
                const std::string& model_name) {
  RMSYN_SPAN("io-write-blif");
  out << ".model " << model_name << "\n.inputs";
  for (const NodeId pi : net.pis()) out << ' ' << net.name(pi);
  out << "\n.outputs";
  for (std::size_t i = 0; i < net.po_count(); ++i) out << ' ' << net.po_name(i);
  out << "\n";

  const auto live = net.live_mask();
  bool used_gnd = false, used_vdd = false;
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    for (const NodeId f : net.fanins(n)) {
      used_gnd |= f == Network::kConst0;
      used_vdd |= f == Network::kConst1;
    }
  }
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    used_gnd |= net.po(i) == Network::kConst0;
    used_vdd |= net.po(i) == Network::kConst1;
  }
  if (used_gnd) out << ".names gnd\n";
  if (used_vdd) out << ".names vdd\n1\n";

  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const auto& fi = net.fanins(n);
    out << ".names";
    for (const NodeId f : fi) out << ' ' << node_label(net, f);
    out << ' ' << node_label(net, n) << "\n";
    const std::size_t k = fi.size();
    switch (t) {
      case GateType::Buf: out << "1 1\n"; break;
      case GateType::Not: out << "0 1\n"; break;
      case GateType::And: out << std::string(k, '1') << " 1\n"; break;
      case GateType::Nand:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '0';
          out << row << " 1\n";
        }
        break;
      case GateType::Or:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          out << row << " 1\n";
        }
        break;
      case GateType::Nor: out << std::string(k, '0') << " 1\n"; break;
      case GateType::Xor:
        if (k != 2) throw std::invalid_argument("write_blif: XOR arity > 2");
        out << "01 1\n10 1\n";
        break;
      case GateType::Xnor:
        if (k != 2) throw std::invalid_argument("write_blif: XNOR arity > 2");
        out << "00 1\n11 1\n";
        break;
      default: break;
    }
  }
  // Output drivers: alias PO names onto their source nodes.
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    out << ".names " << node_label(net, net.po(i)) << ' ' << net.po_name(i)
        << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& net, const std::string& model_name) {
  std::ostringstream ss;
  write_blif(ss, net, model_name);
  return ss.str();
}

namespace {

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

struct BlifNames {
  std::vector<std::string> inputs; // signal names
  std::string output;
  std::vector<std::string> rows; // cube rows "10- 1"
  std::vector<int> row_lines;    // source line of each row (diagnostics)
  int line = 0;                  // source line of the .names header
};

[[noreturn]] void blif_error(int lineno, const std::string& what) {
  throw RmsynError(ErrorCode::ParseError, "read_blif: line " +
                                              std::to_string(lineno) + ": " +
                                              what);
}

} // namespace

Network read_blif(std::istream& in) {
  std::vector<std::pair<std::string, int>> input_names, output_names;
  std::vector<BlifNames> blocks;

  std::string line, pending;
  int phys_line = 0;    // physical lines consumed so far
  int logical_line = 0; // line the current logical line started on
  const auto next_logical_line = [&](std::string& out_line) -> bool {
    out_line.clear();
    logical_line = 0;
    while (std::getline(in, line)) {
      ++phys_line;
      if (logical_line == 0) logical_line = phys_line;
      if (const auto pos = line.find('#'); pos != std::string::npos)
        line.erase(pos);
      while (!line.empty() &&
             std::isspace(static_cast<unsigned char>(line.back())))
        line.pop_back();
      if (!line.empty() && line.back() == '\\') {
        // Continuation: accumulate and keep reading.
        line.pop_back();
        out_line += line + " ";
        continue;
      }
      out_line += line;
      if (!out_line.empty()) return true;
      logical_line = 0; // blank line: restart the span
    }
    return !out_line.empty();
  };

  BlifNames* current = nullptr;
  while (next_logical_line(pending)) {
    auto toks = split_tokens(pending);
    if (toks.empty()) continue;
    if (toks[0] == ".model") {
      current = nullptr;
    } else if (toks[0] == ".inputs") {
      for (auto it = toks.begin() + 1; it != toks.end(); ++it)
        input_names.emplace_back(*it, logical_line);
      current = nullptr;
    } else if (toks[0] == ".outputs") {
      for (auto it = toks.begin() + 1; it != toks.end(); ++it)
        output_names.emplace_back(*it, logical_line);
      current = nullptr;
    } else if (toks[0] == ".names") {
      if (toks.size() < 2) blif_error(logical_line, ".names without output");
      blocks.emplace_back();
      current = &blocks.back();
      current->inputs.assign(toks.begin() + 1, toks.end() - 1);
      current->output = toks.back();
      current->line = logical_line;
    } else if (toks[0] == ".end") {
      break;
    } else if (toks[0] == ".latch" || toks[0] == ".subckt" ||
               toks[0] == ".gate") {
      blif_error(logical_line,
                 "sequential/hierarchical BLIF not supported: " + toks[0]);
    } else if (toks[0][0] == '.') {
      // Other directives (.default_input_arrival etc.) are ignored.
      current = nullptr;
    } else {
      if (current == nullptr)
        blif_error(logical_line, "cube row outside .names: " + pending);
      current->rows.push_back(pending);
      current->row_lines.push_back(logical_line);
    }
  }

  Network net;
  std::map<std::string, NodeId> signal;
  for (const auto& [n, lineno] : input_names) {
    if (signal.count(n)) blif_error(lineno, "duplicate input " + n);
    signal[n] = net.add_pi(n);
  }
  // Reject .names blocks that would silently shadow a PI or another block.
  for (const auto& b : blocks) {
    if (signal.count(b.output))
      blif_error(b.line, ".names redefines input " + b.output);
  }
  {
    std::map<std::string, int> driver_line;
    for (const auto& b : blocks) {
      const auto [it, fresh] = driver_line.emplace(b.output, b.line);
      if (!fresh)
        blif_error(b.line, ".names redefines " + b.output +
                               " (first defined at line " +
                               std::to_string(it->second) + ")");
    }
  }

  // .names blocks may be out of order; resolve iteratively.
  std::vector<bool> done(blocks.size(), false);
  std::size_t remaining = blocks.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      if (done[bi]) continue;
      const BlifNames& b = blocks[bi];
      bool ready = true;
      for (const auto& inp : b.inputs)
        if (!signal.count(inp)) { ready = false; break; }
      if (!ready) continue;

      NodeId node;
      if (b.inputs.empty()) {
        // Constant: a row "1" means const1; no rows means const0.
        bool value = false;
        for (const auto& row : b.rows) {
          const auto toks = split_tokens(row);
          if (!toks.empty() && toks.back() == "1") value = true;
        }
        node = net.constant(value);
      } else {
        std::vector<NodeId> terms;
        bool complemented_rows = false, true_rows = false;
        for (std::size_t ri = 0; ri < b.rows.size(); ++ri) {
          const std::string& row = b.rows[ri];
          const int row_line = b.row_lines[ri];
          const auto toks = split_tokens(row);
          if (toks.size() != 2)
            blif_error(row_line, "expected '<mask> <value>', got " +
                                     std::to_string(toks.size()) +
                                     " fields: " + row);
          const std::string& mask = toks[0];
          if (mask.size() != b.inputs.size())
            blif_error(row_line, "mask is " + std::to_string(mask.size()) +
                                     " wide, .names has " +
                                     std::to_string(b.inputs.size()) +
                                     " inputs: " + row);
          if (toks[1] != "1" && toks[1] != "0")
            blif_error(row_line, "output value must be 0 or 1: " + row);
          (toks[1] == "1" ? true_rows : complemented_rows) = true;
          std::vector<NodeId> lits;
          for (std::size_t i = 0; i < mask.size(); ++i) {
            const NodeId src = signal.at(b.inputs[i]);
            if (mask[i] == '1') lits.push_back(src);
            else if (mask[i] == '0') lits.push_back(net.add_not(src));
            else if (mask[i] != '-')
              blif_error(row_line, std::string("bad cube character '") +
                                       mask[i] + "': " + row);
          }
          if (lits.empty()) terms.push_back(Network::kConst1);
          else if (lits.size() == 1) terms.push_back(lits[0]);
          else terms.push_back(net.add_gate(GateType::And, std::move(lits)));
        }
        if (true_rows && complemented_rows)
          blif_error(b.line, "mixed-phase .names block for " + b.output);
        if (terms.empty()) node = Network::kConst0;
        else if (terms.size() == 1) node = terms[0];
        else node = net.add_gate(GateType::Or, std::move(terms));
        if (complemented_rows) node = net.add_not(node);
      }
      signal[b.output] = node;
      done[bi] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t bi = 0; bi < blocks.size(); ++bi)
      if (!done[bi])
        blif_error(blocks[bi].line, "unresolved (cyclic or undriven-input?) "
                                    ".names block for " +
                                        blocks[bi].output);
  }

  for (const auto& [n, lineno] : output_names) {
    const auto it = signal.find(n);
    if (it == signal.end()) blif_error(lineno, "undriven output " + n);
    net.add_po(it->second, n);
  }
  return net;
}

Network read_blif_string(const std::string& text) {
  RMSYN_SPAN("io-read-blif");
  std::istringstream ss(text);
  return read_blif(ss);
}

// --- AIGER -------------------------------------------------------------------

namespace {

[[noreturn]] void aiger_error(const std::string& what) {
  throw RmsynError(ErrorCode::ParseError, "read_aiger: " + what);
}

/// Upper bound on header counts (M, I, O, A). A hostile or corrupted header
/// must not translate into multi-gigabyte up-front allocations: the reader
/// sizes var_node/neg_node/out_lits directly from these fields, so cap them
/// long before std::bad_alloc (which the taxonomy would misread as a
/// transient budget trip) can happen.
constexpr uint64_t kMaxAigerCount = 1ull << 28;

uint64_t aiger_u64(const std::string& tok, const std::string& what) {
  uint64_t v = 0;
  if (tok.empty()) aiger_error(what + ": empty field");
  for (const char c : tok) {
    if (c < '0' || c > '9') aiger_error(what + ": not a number: " + tok);
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (~0ull - d) / 10)
      aiger_error(what + ": number overflows 64 bits: " + tok);
    v = v * 10 + d;
  }
  return v;
}

/// LEB128-style delta used by the binary and-gate section: 7 payload bits
/// per byte, MSB set on all but the last byte. The 10th byte may only carry
/// the single bit 63 — any higher payload bit would be silently shifted out.
uint64_t aiger_varint(std::istream& in) {
  uint64_t x = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof())
      aiger_error("truncated binary and-gate section");
    if (shift == 63 && (c & 0x7E) != 0)
      aiger_error("varint overflow in and-gate section");
    x |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return x;
    shift += 7;
    if (shift > 63) aiger_error("varint overflow in and-gate section");
  }
}

} // namespace

Network read_aiger(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) aiger_error("empty file");
  const auto htoks = split_tokens(header);
  if (htoks.size() != 6 || (htoks[0] != "aag" && htoks[0] != "aig"))
    aiger_error("bad header (want 'aag|aig M I L O A'): " + header);
  const bool binary = htoks[0] == "aig";
  const uint64_t M = aiger_u64(htoks[1], "M");
  const uint64_t I = aiger_u64(htoks[2], "I");
  const uint64_t L = aiger_u64(htoks[3], "L");
  const uint64_t O = aiger_u64(htoks[4], "O");
  const uint64_t A = aiger_u64(htoks[5], "A");
  if (L != 0) aiger_error("latches not supported (combinational only)");
  if (M > kMaxAigerCount || O > kMaxAigerCount)
    aiger_error("header count exceeds supported maximum (" +
                std::to_string(kMaxAigerCount) + "): " + header);
  // Overflow-safe form of "I + A > M": both operands may individually be
  // anywhere in the 64-bit range, so never compute the sum directly.
  if (I > M || A > M - I) aiger_error("header claims more variables than M");
  if (binary && (I > M || M - I != A))
    aiger_error("binary header requires M = I + A");

  const auto next_line = [&](const std::string& what) {
    std::string line;
    if (!std::getline(in, line)) aiger_error("truncated " + what + " section");
    return line;
  };

  // Input literals: explicit in ascii, implicitly 2,4,...,2I in binary.
  std::vector<uint64_t> in_lits(I);
  for (uint64_t i = 0; i < I; ++i) {
    if (binary) {
      in_lits[i] = 2 * (i + 1);
      continue;
    }
    const uint64_t lit = aiger_u64(next_line("input"), "input literal");
    if (lit < 2 || (lit & 1) != 0 || lit / 2 > M)
      aiger_error("bad input literal " + std::to_string(lit));
    in_lits[i] = lit;
  }

  std::vector<uint64_t> out_lits(O);
  for (uint64_t i = 0; i < O; ++i) {
    out_lits[i] = aiger_u64(next_line("output"), "output literal");
    if (out_lits[i] / 2 > M)
      aiger_error("output literal " + std::to_string(out_lits[i]) +
                  " exceeds M");
  }

  struct AndDef {
    uint64_t lhs, rhs0, rhs1;
  };
  std::vector<AndDef> ands;
  ands.reserve(A);
  for (uint64_t i = 0; i < A; ++i) {
    if (binary) {
      const uint64_t lhs = 2 * (I + i + 1);
      const uint64_t d0 = aiger_varint(in);
      const uint64_t d1 = aiger_varint(in);
      if (d0 == 0 || d0 > lhs || d1 > lhs - d0)
        aiger_error("bad delta encoding for and-gate " + std::to_string(lhs));
      ands.push_back({lhs, lhs - d0, lhs - d0 - d1});
    } else {
      const auto toks = split_tokens(next_line("and-gate"));
      if (toks.size() != 3)
        aiger_error("and-gate line needs 'lhs rhs0 rhs1'");
      const AndDef d{aiger_u64(toks[0], "lhs"), aiger_u64(toks[1], "rhs0"),
                     aiger_u64(toks[2], "rhs1")};
      if (d.lhs < 2 || (d.lhs & 1) != 0 || d.lhs / 2 > M)
        aiger_error("bad and-gate lhs " + std::to_string(d.lhs));
      if (d.rhs0 / 2 > M || d.rhs1 / 2 > M)
        aiger_error("and-gate rhs exceeds M");
      ands.push_back(d);
    }
  }

  // Optional symbol table, terminated by EOF or a 'c' comment header.
  std::vector<std::string> in_names(I), out_names(O);
  std::string line;
  while (std::getline(in, line)) {
    if (line == "c") break;
    if (line.empty()) continue;
    const auto sp = line.find(' ');
    if (sp == std::string::npos || sp < 2) continue; // tolerate junk
    const char kind = line[0];
    const uint64_t idx = aiger_u64(line.substr(1, sp - 1), "symbol index");
    const std::string name = line.substr(sp + 1);
    if (kind == 'i' && idx < I) in_names[idx] = name;
    else if (kind == 'o' && idx < O) out_names[idx] = name;
    else if (kind != 'i' && kind != 'o')
      aiger_error("unsupported symbol entry: " + line);
  }

  Network net;
  std::vector<NodeId> var_node(M + 1, Network::kNoNode);
  std::vector<NodeId> neg_node(M + 1, Network::kNoNode);
  for (uint64_t i = 0; i < I; ++i) {
    const uint64_t v = in_lits[i] / 2;
    if (var_node[v] != Network::kNoNode)
      aiger_error("duplicate input variable " + std::to_string(v));
    var_node[v] =
        net.add_pi(in_names[i].empty() ? "i" + std::to_string(i) : in_names[i]);
  }
  for (const auto& d : ands) {
    if (var_node[d.lhs / 2] != Network::kNoNode)
      aiger_error("variable " + std::to_string(d.lhs / 2) + " defined twice");
    var_node[d.lhs / 2] = Network::kConst0; // placeholder: marks "defined"
  }
  for (const auto& d : ands) var_node[d.lhs / 2] = Network::kNoNode;

  // lit -> node, creating one shared inverter per complemented variable.
  const auto lit_node = [&](uint64_t lit) -> NodeId {
    if (lit < 2) return lit == 0 ? Network::kConst0 : Network::kConst1;
    const NodeId v = var_node[lit / 2];
    if (v == Network::kNoNode) return Network::kNoNode;
    if ((lit & 1) == 0) return v;
    NodeId& neg = neg_node[lit / 2];
    if (neg == Network::kNoNode) neg = net.add_not(v);
    return neg;
  };

  // Ascii files may define gates in any order; resolve iteratively (binary
  // files are ordered and settle in one pass).
  std::vector<bool> done(ands.size(), false);
  std::size_t remaining = ands.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < ands.size(); ++i) {
      if (done[i]) continue;
      const NodeId a = lit_node(ands[i].rhs0);
      if (a == Network::kNoNode) continue;
      const NodeId b = lit_node(ands[i].rhs1);
      if (b == Network::kNoNode) continue;
      var_node[ands[i].lhs / 2] = net.add_gate(GateType::And, {a, b});
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) aiger_error("unresolved (cyclic?) and-gates");

  for (uint64_t i = 0; i < O; ++i) {
    const NodeId n = lit_node(out_lits[i]);
    if (n == Network::kNoNode)
      aiger_error("output " + std::to_string(i) + " reads undefined variable " +
                  std::to_string(out_lits[i] / 2));
    net.add_po(n, out_names[i].empty() ? "o" + std::to_string(i)
                                       : out_names[i]);
  }
  return net;
}

Network read_aiger_string(const std::string& text) {
  RMSYN_SPAN("io-read-aiger");
  std::istringstream ss(text);
  return read_aiger(ss);
}

void write_aiger(std::ostream& out, const Network& net, bool binary) {
  RMSYN_SPAN("io-write-aiger");
  const auto order = net.topo_order();
  const auto live = net.live_mask();
  const std::size_t I = net.pi_count();

  constexpr uint64_t kUnset = ~0ull;
  std::vector<uint64_t> lit(net.node_count(), kUnset);
  lit[Network::kConst0] = 0;
  lit[Network::kConst1] = 1;
  for (std::size_t i = 0; i < I; ++i) lit[net.pis()[i]] = 2 * (i + 1);

  uint64_t next_var = I + 1;
  struct AndGate {
    uint64_t rhs0, rhs1; // rhs0 >= rhs1; lhs implicit: 2*(I + 1 + index)
  };
  std::vector<AndGate> ands;
  const auto mk_and = [&](uint64_t a, uint64_t b) -> uint64_t {
    if (a < b) std::swap(a, b);
    ands.push_back({a, b});
    return 2 * next_var++;
  };

  for (const NodeId n : order) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const FaninSpan fi = net.fanins(n);
    const auto in_lit = [&](std::size_t k) { return lit[fi[k]]; };
    switch (t) {
      case GateType::Buf:
        lit[n] = in_lit(0);
        break;
      case GateType::Not:
        lit[n] = in_lit(0) ^ 1;
        break;
      case GateType::And:
      case GateType::Nand: {
        uint64_t acc = in_lit(0);
        for (std::size_t k = 1; k < fi.size(); ++k)
          acc = mk_and(acc, in_lit(k));
        lit[n] = t == GateType::Nand ? acc ^ 1 : acc;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        uint64_t acc = in_lit(0) ^ 1; // NOR as AND of complements
        for (std::size_t k = 1; k < fi.size(); ++k)
          acc = mk_and(acc, in_lit(k) ^ 1);
        lit[n] = t == GateType::Or ? acc ^ 1 : acc;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        uint64_t acc = in_lit(0);
        for (std::size_t k = 1; k < fi.size(); ++k) {
          const uint64_t b = in_lit(k);
          const uint64_t t0 = mk_and(acc, b ^ 1);
          const uint64_t t1 = mk_and(acc ^ 1, b);
          acc = mk_and(t0 ^ 1, t1 ^ 1) ^ 1;
        }
        lit[n] = t == GateType::Xnor ? acc ^ 1 : acc;
        break;
      }
      default:
        break;
    }
  }

  const uint64_t M = next_var - 1;
  out << (binary ? "aig " : "aag ") << M << ' ' << I << " 0 "
      << net.po_count() << ' ' << ands.size() << "\n";
  if (!binary)
    for (std::size_t i = 0; i < I; ++i) out << 2 * (i + 1) << "\n";
  for (std::size_t i = 0; i < net.po_count(); ++i) out << lit[net.po(i)] << "\n";
  if (binary) {
    const auto put_varint = [&](uint64_t x) {
      while (x >= 0x80) {
        out.put(static_cast<char>(0x80 | (x & 0x7F)));
        x >>= 7;
      }
      out.put(static_cast<char>(x));
    };
    for (std::size_t i = 0; i < ands.size(); ++i) {
      const uint64_t lhs = 2 * (I + 1 + i);
      put_varint(lhs - ands[i].rhs0);
      put_varint(ands[i].rhs0 - ands[i].rhs1);
    }
  } else {
    for (std::size_t i = 0; i < ands.size(); ++i)
      out << 2 * (I + 1 + i) << ' ' << ands[i].rhs0 << ' ' << ands[i].rhs1
          << "\n";
  }
  for (std::size_t i = 0; i < I; ++i)
    if (!net.name(net.pis()[i]).empty())
      out << 'i' << i << ' ' << net.name(net.pis()[i]) << "\n";
  for (std::size_t i = 0; i < net.po_count(); ++i)
    if (!net.po_name(i).empty()) out << 'o' << i << ' ' << net.po_name(i) << "\n";
}

std::string write_aiger_string(const Network& net, bool binary) {
  std::ostringstream ss;
  write_aiger(ss, net, binary);
  return ss.str();
}

std::string to_dot(const Network& net, const std::string& name) {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n  rankdir=BT;\n";
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    const char* shape = t == GateType::Pi ? "box" : "ellipse";
    out << "  n" << n << " [label=\""
        << (t == GateType::Pi ? net.name(n) : gate_type_name(t)) << "\", shape="
        << shape << "];\n";
    for (const NodeId f : net.fanins(n))
      out << "  n" << f << " -> n" << n << ";\n";
  }
  for (std::size_t i = 0; i < net.po_count(); ++i) {
    out << "  po" << i << " [label=\"" << net.po_name(i)
        << "\", shape=invtriangle];\n";
    out << "  n" << net.po(i) << " -> po" << i << ";\n";
  }
  out << "}\n";
  return out.str();
}

} // namespace rmsyn
