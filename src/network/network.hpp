// Gate-level Boolean network: the object every synthesis pass in rmsyn
// produces and transforms. Nodes are n-ary gates over node ids; ids 0 and 1
// are the constant-0/constant-1 nodes of every network.
//
// Storage is structure-of-arrays (the layout mockturtle-style flat networks
// and ABC's NewBdd use to reach 100k+ nodes): one packed word per node
// (type + flags + maintained structural level), fanins in a single flat
// arena addressed by offset+count, and maintained fanout lists threaded as
// doubly-linked edge chains through that arena. There is no per-node heap
// allocation on the hot path; `fanins(n)` hands out a FaninSpan view into
// the arena.
//
// Mutation contract (see DESIGN.md §11):
//  * add_pi/add_gate/add_po append; rewrite_gate edits a node in place and
//    keeps fanout lists and levels consistent; recycle() returns an
//    unreferenced node's id to a free list for add_gate to reuse.
//  * A FaninSpan is invalidated by ANY call that can grow or rewrite the
//    arena (add_gate, rewrite_gate, recycle, compact). Copy it (it converts
//    to std::vector) before mutating.
//  * compact() drops dead/garbage storage and remaps ids densely; PI and PO
//    order (and names) are preserved, and the old→new map is returned.
//
// The paper's cost metric is implemented in stats.hpp on top of this class:
// circuits are counted in 2-input AND/OR gates, with each 2-input XOR worth
// three AND/OR gates and inverters free (this reproduces the paper's t481
// arithmetic: 25 gates for the closed-form network, 50 "literals").
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rmsyn {

enum class GateType : uint8_t {
  Const0,
  Const1,
  Pi,
  Buf,
  Not,
  And,
  Or,
  Xor,
  Xnor,
  Nand,
  Nor,
};

const char* gate_type_name(GateType t);

/// True for the gate types an n-ary simulation/cost model treats as parity.
inline bool is_xor_like(GateType t) { return t == GateType::Xor || t == GateType::Xnor; }

using NodeId = uint32_t;

/// One failed deep-consistency check (see Network::check_invariants):
/// which invariant broke, at which node, and a human-readable detail.
struct InvariantViolation {
  std::string invariant; ///< "fanout-chain", "ref-count", "po-ref", "level",
                         ///< "acyclic", "free-list", "arena-span", "pi-index"
  NodeId node;           ///< offending node (kNoNode for global checks)
  std::string detail;

  std::string to_string() const;
};

/// Process-wide paranoid mode (--paranoid): when enabled, every structural
/// transform re-runs the deep invariant checker on its result and throws
/// RmsynError(InvariantViolation) on the first inconsistency, turning
/// silent SoA corruption into an immediate, named failure.
void set_paranoid_checks(bool on);
bool paranoid_checks_enabled();

/// Non-owning view of one node's fanins inside the flat arena. Converts
/// implicitly to std::vector<NodeId> so pre-SoA call sites that copied the
/// fanin vector keep compiling; invalidated by any mutating Network call.
class FaninSpan {
public:
  using value_type = NodeId;
  using const_iterator = const NodeId*;

  FaninSpan() = default;
  FaninSpan(const NodeId* data, std::size_t count) : data_(data), count_(count) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + count_; }
  const NodeId* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  NodeId operator[](std::size_t i) const { return data_[i]; }
  NodeId front() const { return data_[0]; }
  NodeId back() const { return data_[count_ - 1]; }

  std::vector<NodeId> to_vector() const { return {begin(), end()}; }
  operator std::vector<NodeId>() const { return to_vector(); }

private:
  const NodeId* data_ = nullptr;
  std::size_t count_ = 0;
};

inline bool operator==(const FaninSpan& a, const FaninSpan& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}
inline bool operator==(const FaninSpan& a, const std::vector<NodeId>& b) {
  return a == FaninSpan(b.data(), b.size());
}
inline bool operator==(const std::vector<NodeId>& a, const FaninSpan& b) {
  return b == a;
}
inline bool operator!=(const FaninSpan& a, const std::vector<NodeId>& b) {
  return !(a == b);
}
inline bool operator!=(const std::vector<NodeId>& a, const FaninSpan& b) {
  return !(b == a);
}

class Network {
public:
  static constexpr NodeId kConst0 = 0;
  static constexpr NodeId kConst1 = 1;
  /// Sentinel for "no node / no edge" in the SoA link fields and in the
  /// remap vector compact() returns for dropped nodes.
  static constexpr NodeId kNoNode = 0xFFFFFFFFu;

  Network();

  /// Pre-sizes the SoA columns (and the fanin arena to `edges` entries) so
  /// a generator of known size never reallocates mid-build.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Adds a primary input and returns its node id. PI order is the pattern
  /// order used by the simulator and the pattern generators. PIs never
  /// reuse recycled ids: pi order stays append order.
  NodeId add_pi(std::string name = {});

  /// Adds a gate whose fanins must already exist. And/Or/Xor/Xnor/Nand/Nor
  /// accept >= 1 fanins; Not/Buf exactly one. Reuses a recycled id when one
  /// is available.
  NodeId add_gate(GateType type, const std::vector<NodeId>& fanins);

  NodeId add_not(NodeId a) { return add_gate(GateType::Not, {a}); }
  NodeId add_and(NodeId a, NodeId b) { return add_gate(GateType::And, {a, b}); }
  NodeId add_or(NodeId a, NodeId b) { return add_gate(GateType::Or, {a, b}); }
  NodeId add_xor(NodeId a, NodeId b) { return add_gate(GateType::Xor, {a, b}); }
  NodeId constant(bool v) const { return v ? kConst1 : kConst0; }

  /// Registers a primary output pointing at `node`.
  void add_po(NodeId node, std::string name = {});

  /// Number of node slots, including recycled-but-not-compacted ones.
  std::size_t node_count() const { return packed_.size(); }
  std::size_t pi_count() const { return pis_.size(); }
  std::size_t po_count() const { return pos_.size(); }
  /// Fanin-arena entries ever allocated (live blocks + garbage from
  /// rewrites); compact() drops the garbage.
  std::size_t edge_capacity() const { return arena_.size(); }

  GateType type(NodeId n) const {
    return static_cast<GateType>(packed_[n] & kTypeMask);
  }
  /// True for a node returned to the free list by recycle().
  bool is_dead(NodeId n) const { return (packed_[n] & kDeadFlag) != 0; }
  /// Maintained structural level: 0 for PIs/constants, 1 + max fanin level
  /// for gates (every gate counts one level regardless of type/arity —
  /// stats.hpp derives the paper's 2-input depth metric separately).
  uint32_t level(NodeId n) const { return packed_[n] >> kLevelShift; }

  FaninSpan fanins(NodeId n) const {
    return {arena_.data() + fanin_off_[n], fanin_cnt_[n]};
  }
  std::size_t fanin_count(NodeId n) const { return fanin_cnt_[n]; }
  NodeId fanin(NodeId n, std::size_t k) const { return arena_[fanin_off_[n] + k]; }

  const std::string& name(NodeId n) const { return names_[n]; }
  void set_name(NodeId n, std::string name) { names_[n] = std::move(name); }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<NodeId>& pos() const { return pos_; }
  const std::string& po_name(std::size_t i) const { return po_names_[i]; }
  NodeId po(std::size_t i) const { return pos_[i]; }

  /// Index of a PI node in pi order; requires type(n)==Pi. O(1).
  std::size_t pi_index(NodeId n) const;

  /// Redirects primary output i to a different node (PO ref counts follow).
  void retarget_po(std::size_t i, NodeId node);

  /// In-place gate rewrite (used by redundancy removal): replaces the
  /// type/fanins of an existing node, relinking fanout lists and repairing
  /// levels through the fanout cone. The new fanins must keep the network
  /// acyclic; callers are responsible for acyclicity.
  void rewrite_gate(NodeId n, GateType type, const std::vector<NodeId>& fanins);

  /// Returns an unreferenced gate (ref_count and po_ref_count both 0) to
  /// the free list; its id may be handed out again by add_gate. PIs and
  /// constants are never recycled.
  void recycle(NodeId n);

  // ---- maintained fanout structure ----

  /// Number of fanin-edge references to n from non-recycled nodes
  /// (duplicate fanins count twice). POs are tracked separately in
  /// po_ref_count(). Unlike fanout_counts(), nodes outside the PO cone
  /// still contribute here.
  uint32_t ref_count(NodeId n) const { return ref_count_[n]; }
  /// Number of primary outputs currently pointing at n.
  uint32_t po_ref_count(NodeId n) const { return po_refs_[n]; }

  /// Iterates the maintained fanout list of a node, yielding the owning
  /// (reading) node of each fanin edge; a node with a duplicate fanin
  /// appears once per edge. Order is maintenance order, not id order.
  class FanoutRange {
  public:
    class iterator {
    public:
      iterator(const Network* net, uint32_t edge) : net_(net), edge_(edge) {}
      NodeId operator*() const { return net_->edge_owner_[edge_]; }
      iterator& operator++() {
        edge_ = net_->next_out_[edge_];
        return *this;
      }
      bool operator!=(const iterator& o) const { return edge_ != o.edge_; }
      bool operator==(const iterator& o) const { return edge_ == o.edge_; }

    private:
      const Network* net_;
      uint32_t edge_;
    };
    FanoutRange(const Network* net, uint32_t head) : net_(net), head_(head) {}
    iterator begin() const { return {net_, head_}; }
    iterator end() const { return {net_, kNoNode}; }

  private:
    const Network* net_;
    uint32_t head_;
  };
  FanoutRange fanouts(NodeId n) const { return {this, first_out_[n]}; }

  /// Copies the maintained fanout list into a vector (maintenance order).
  std::vector<NodeId> fanout_list(NodeId n) const;

  // ---- whole-network queries ----

  /// Nodes in topological order (fanins before fanouts), restricted to the
  /// cone of the POs plus all PIs/constants.
  std::vector<NodeId> topo_order() const;

  /// Nodes reachable from the POs (the "live" cone), including PIs.
  std::vector<bool> live_mask() const;

  /// Number of fanout references of each node counting only live readers
  /// (POs count once each) — the historical pre-SoA semantics, now served
  /// from the maintained fanout lists instead of a full fanin re-scan.
  std::vector<uint32_t> fanout_counts() const;

  /// Remaps ids densely: constants, then PIs in pi order, then the live
  /// internal cone in topological order. Dead nodes, recycled slots and
  /// arena garbage are dropped; PI/PO order and all names are preserved.
  /// Returns the old-id → new-id map (kNoNode for dropped nodes).
  std::vector<NodeId> compact();

  /// Evaluates the network on one input assignment (bit i = PI i).
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

  // ---- deep invariant checker (DESIGN.md §12) ----

  /// Re-derives every piece of maintained structure from scratch and
  /// reports where the SoA columns disagree:
  ///   * fanout-chain: doubly-linked chain consistency (prev/next mirror
  ///     each other, every edge's target is the chain owner, every live
  ///     fanin edge appears in exactly one chain) and chain length ==
  ///     ref_count;
  ///   * ref-count / po-ref: maintained counters vs a full recount;
  ///   * level: packed level == 1 + max fanin level (0 for PI/const);
  ///   * acyclic: no fanin cycle through live nodes;
  ///   * free-list: free list and dead flags agree (every dead node listed
  ///     exactly once, no live node listed, dead nodes fully unlinked);
  ///   * arena-span: every fanin block lies inside the arena and its edges
  ///     are owned by the node; live fanins point at live nodes;
  ///   * pi-index: pi_pos_ column and pis_ vector are inverse bijections.
  /// Stops after `max_violations` findings (corruption tends to cascade).
  std::vector<InvariantViolation> check_invariants(
      std::size_t max_violations = 16) const;

  /// Throws RmsynError(ErrorCode::InvariantViolation) naming `where`, the
  /// broken invariant and the node id when check_invariants() finds
  /// anything. No-op on a consistent network.
  void assert_invariants(const char* where) const;

private:
  /// Test-only backdoor: the invariant-checker tests corrupt individual
  /// SoA columns through this accessor to prove every check fires. Not
  /// part of the public API.
  friend struct NetworkTestAccess;
  static constexpr uint32_t kTypeMask = 0xF;
  static constexpr uint32_t kDeadFlag = 0x10;
  static constexpr uint32_t kLevelShift = 8;
  static constexpr uint32_t kMaxLevel = 0xFFFFFF;

  void set_type(NodeId n, GateType t) {
    packed_[n] = (packed_[n] & ~kTypeMask) | static_cast<uint32_t>(t);
  }
  void set_level(NodeId n, uint32_t lv) {
    assert(lv <= kMaxLevel);
    packed_[n] = (packed_[n] & ((1u << kLevelShift) - 1)) | (lv << kLevelShift);
  }
  void set_dead(NodeId n, bool dead) {
    if (dead) packed_[n] |= kDeadFlag;
    else packed_[n] &= ~kDeadFlag;
  }

  NodeId new_node(GateType t, std::string name, bool reuse_free);
  void link_edge(uint32_t e);
  void unlink_edge(uint32_t e);
  uint32_t compute_level(NodeId n) const;
  void repair_levels_from(NodeId n);
  void validate_gate(GateType type, const std::vector<NodeId>& fanins) const;

  // ---- per-node columns (SoA) ----
  std::vector<uint32_t> packed_;    ///< type | dead flag | level<<8
  std::vector<uint32_t> fanin_off_; ///< first arena index of the fanin block
  std::vector<uint32_t> fanin_cnt_; ///< fanin count
  std::vector<uint32_t> first_out_; ///< head edge of the fanout list
  std::vector<uint32_t> ref_count_; ///< maintained fanin-edge references
  std::vector<uint32_t> po_refs_;   ///< maintained PO references
  std::vector<uint32_t> pi_pos_;    ///< PI ordinal (kNoNode for non-PIs)
  std::vector<std::string> names_;

  // ---- per-edge columns (flat fanin arena) ----
  std::vector<NodeId> arena_;       ///< fanin targets
  std::vector<NodeId> edge_owner_;  ///< node whose fanin this edge is
  std::vector<uint32_t> next_out_;  ///< next edge in target's fanout list
  std::vector<uint32_t> prev_out_;  ///< previous edge in that list

  std::vector<NodeId> pis_;
  std::vector<NodeId> pos_;
  std::vector<std::string> po_names_;
  std::vector<NodeId> free_; ///< recycled ids available to add_gate
};

/// Paranoid-mode hook every structural transform calls on its result: runs
/// the deep checker (and throws) only when --paranoid armed it, so the
/// disabled cost is one relaxed atomic load per transform.
void maybe_check_invariants(const Network& net, const char* where);

} // namespace rmsyn
