// Gate-level Boolean network: the object every synthesis pass in rmsyn
// produces and transforms. Nodes are n-ary gates over node ids; ids 0 and 1
// are the constant-0/constant-1 nodes of every network.
//
// The paper's cost metric is implemented in stats.hpp on top of this class:
// circuits are counted in 2-input AND/OR gates, with each 2-input XOR worth
// three AND/OR gates and inverters free (this reproduces the paper's t481
// arithmetic: 25 gates for the closed-form network, 50 "literals").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rmsyn {

enum class GateType : uint8_t {
  Const0,
  Const1,
  Pi,
  Buf,
  Not,
  And,
  Or,
  Xor,
  Xnor,
  Nand,
  Nor,
};

const char* gate_type_name(GateType t);

/// True for the gate types an n-ary simulation/cost model treats as parity.
inline bool is_xor_like(GateType t) { return t == GateType::Xor || t == GateType::Xnor; }

using NodeId = uint32_t;

class Network {
public:
  static constexpr NodeId kConst0 = 0;
  static constexpr NodeId kConst1 = 1;

  Network();

  /// Adds a primary input and returns its node id. PI order is the pattern
  /// order used by the simulator and the pattern generators.
  NodeId add_pi(std::string name = {});

  /// Adds a gate whose fanins must already exist. And/Or/Xor/Xnor/Nand/Nor
  /// accept >= 1 fanins; Not/Buf exactly one.
  NodeId add_gate(GateType type, std::vector<NodeId> fanins);

  NodeId add_not(NodeId a) { return add_gate(GateType::Not, {a}); }
  NodeId add_and(NodeId a, NodeId b) { return add_gate(GateType::And, {a, b}); }
  NodeId add_or(NodeId a, NodeId b) { return add_gate(GateType::Or, {a, b}); }
  NodeId add_xor(NodeId a, NodeId b) { return add_gate(GateType::Xor, {a, b}); }
  NodeId constant(bool v) const { return v ? kConst1 : kConst0; }

  /// Registers a primary output pointing at `node`.
  void add_po(NodeId node, std::string name = {});

  std::size_t node_count() const { return types_.size(); }
  std::size_t pi_count() const { return pis_.size(); }
  std::size_t po_count() const { return pos_.size(); }

  GateType type(NodeId n) const { return types_[n]; }
  const std::vector<NodeId>& fanins(NodeId n) const { return fanins_[n]; }
  const std::string& name(NodeId n) const { return names_[n]; }
  void set_name(NodeId n, std::string name) { names_[n] = std::move(name); }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<NodeId>& pos() const { return pos_; }
  const std::string& po_name(std::size_t i) const { return po_names_[i]; }
  NodeId po(std::size_t i) const { return pos_[i]; }

  /// Index of a PI node in pi order; requires type(n)==Pi.
  std::size_t pi_index(NodeId n) const;

  /// Redirects primary output i to a different node.
  void retarget_po(std::size_t i, NodeId node) { pos_[i] = node; }

  /// In-place gate rewrite (used by redundancy removal): replaces the
  /// type/fanins of an existing node. The new fanins must have lower ids or
  /// be acyclic; callers are responsible for acyclicity.
  void rewrite_gate(NodeId n, GateType type, std::vector<NodeId> fanins);

  /// Nodes in topological order (fanins before fanouts), restricted to the
  /// cone of the POs plus all PIs/constants.
  std::vector<NodeId> topo_order() const;

  /// Nodes reachable from the POs (the "live" cone), including PIs.
  std::vector<bool> live_mask() const;

  /// Number of fanout references of each node (POs count once each).
  std::vector<uint32_t> fanout_counts() const;

  /// Evaluates the network on one input assignment (bit i = PI i).
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

private:
  std::vector<GateType> types_;
  std::vector<std::vector<NodeId>> fanins_;
  std::vector<std::string> names_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> pos_;
  std::vector<std::string> po_names_;
};

} // namespace rmsyn
