#include "network/transform.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>
#include <vector>

namespace rmsyn {

namespace {

/// Helper that accumulates a simplified, hashed network. Gates are
/// normalized to {Not, And, Or, Xor} over already-simplified fanins.
class Builder {
public:
  explicit Builder(const Network& src) : src_(src) {
    for (std::size_t i = 0; i < src.pi_count(); ++i) {
      const NodeId pi = out_.add_pi(src.name(src.pis()[i]));
      map_[src.pis()[i]] = pi;
    }
    map_[Network::kConst0] = Network::kConst0;
    map_[Network::kConst1] = Network::kConst1;
  }

  NodeId mapped(NodeId old) const { return map_.at(old); }
  void set_mapped(NodeId old, NodeId nu) { map_[old] = nu; }

  NodeId mk_not(NodeId a) {
    if (a == Network::kConst0) return Network::kConst1;
    if (a == Network::kConst1) return Network::kConst0;
    if (out_.type(a) == GateType::Not) return out_.fanins(a)[0];
    return hashed(GateType::Not, {a});
  }

  bool is_complement_pair(NodeId a, NodeId b) const {
    return (out_.type(a) == GateType::Not && out_.fanins(a)[0] == b) ||
           (out_.type(b) == GateType::Not && out_.fanins(b)[0] == a);
  }

  NodeId mk_andor(GateType type, std::vector<NodeId> fanins) {
    assert(type == GateType::And || type == GateType::Or);
    const NodeId dominating =
        type == GateType::And ? Network::kConst0 : Network::kConst1;
    const NodeId neutral =
        type == GateType::And ? Network::kConst1 : Network::kConst0;
    std::sort(fanins.begin(), fanins.end());
    fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
    std::vector<NodeId> kept;
    for (const NodeId f : fanins) {
      if (f == dominating) return dominating;
      if (f == neutral) continue;
      kept.push_back(f);
    }
    for (std::size_t i = 0; i < kept.size(); ++i)
      for (std::size_t j = i + 1; j < kept.size(); ++j)
        if (is_complement_pair(kept[i], kept[j])) return dominating;
    if (kept.empty()) return neutral;
    if (kept.size() == 1) return kept[0];
    return hashed(type, std::move(kept));
  }

  NodeId mk_xor(std::vector<NodeId> fanins, bool complemented = false) {
    std::vector<NodeId> kept;
    for (const NodeId f : fanins) {
      if (f == Network::kConst0) continue;
      if (f == Network::kConst1) { complemented = !complemented; continue; }
      NodeId g = f;
      // Pull inverters out of XOR fanins: x̄ ⊕ y = (x ⊕ y)'.
      while (out_.type(g) == GateType::Not) {
        complemented = !complemented;
        g = out_.fanins(g)[0];
      }
      kept.push_back(g);
    }
    std::sort(kept.begin(), kept.end());
    // x ⊕ x = 0: drop equal pairs.
    std::vector<NodeId> dedup;
    for (std::size_t i = 0; i < kept.size();) {
      if (i + 1 < kept.size() && kept[i] == kept[i + 1]) {
        i += 2;
      } else {
        dedup.push_back(kept[i]);
        ++i;
      }
    }
    NodeId result;
    if (dedup.empty()) result = Network::kConst0;
    else if (dedup.size() == 1) result = dedup[0];
    else result = hashed(GateType::Xor, std::move(dedup));
    return complemented ? mk_not(result) : result;
  }

  NodeId mk_gate(GateType type, std::vector<NodeId> fanins) {
    switch (type) {
      case GateType::Buf: return fanins[0];
      case GateType::Not: return mk_not(fanins[0]);
      case GateType::And: return mk_andor(GateType::And, std::move(fanins));
      case GateType::Or: return mk_andor(GateType::Or, std::move(fanins));
      case GateType::Nand:
        return mk_not(mk_andor(GateType::And, std::move(fanins)));
      case GateType::Nor:
        return mk_not(mk_andor(GateType::Or, std::move(fanins)));
      case GateType::Xor: return mk_xor(std::move(fanins));
      case GateType::Xnor: return mk_xor(std::move(fanins), true);
      default:
        throw std::logic_error("Builder::mk_gate: bad type");
    }
  }

  Network take() { return std::move(out_); }
  Network& net() { return out_; }

private:
  NodeId hashed(GateType type, std::vector<NodeId> fanins) {
    const auto key = std::make_pair(type, fanins);
    if (const auto it = hash_.find(key); it != hash_.end()) return it->second;
    const NodeId id = out_.add_gate(type, fanins);
    hash_.emplace(std::move(key), id);
    return id;
  }

  const Network& src_;
  Network out_;
  std::map<NodeId, NodeId> map_;
  std::map<std::pair<GateType, std::vector<NodeId>>, NodeId> hash_;
};

} // namespace

Network strash(const Network& net) {
  Builder b(net);
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    fi.reserve(net.fanins(n).size());
    for (const NodeId f : net.fanins(n)) fi.push_back(b.mapped(f));
    b.set_mapped(n, b.mk_gate(t, std::move(fi)));
  }
  for (std::size_t i = 0; i < net.po_count(); ++i)
    b.net().add_po(b.mapped(net.po(i)), net.po_name(i));
  Network out = sweep(b.take());
  maybe_check_invariants(out, "strash");
  return out;
}

namespace {

NodeId balanced_tree(Network& out, GateType type, std::vector<NodeId> leaves) {
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
      next.push_back(out.add_gate(type, {leaves[i], leaves[i + 1]}));
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves.swap(next);
  }
  return leaves[0];
}

} // namespace

Network decompose2(const Network& net) {
  Network out;
  std::vector<NodeId> map(net.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    map[net.pis()[i]] = out.add_pi(net.name(net.pis()[i]));
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    for (const NodeId f : net.fanins(n)) fi.push_back(map[f]);
    switch (t) {
      case GateType::Buf:
      case GateType::Not:
        map[n] = out.add_gate(t, {fi[0]});
        break;
      case GateType::And: case GateType::Or: case GateType::Xor:
        map[n] = balanced_tree(out, t, std::move(fi));
        break;
      case GateType::Nand:
        map[n] = out.add_not(balanced_tree(out, GateType::And, std::move(fi)));
        break;
      case GateType::Nor:
        map[n] = out.add_not(balanced_tree(out, GateType::Or, std::move(fi)));
        break;
      case GateType::Xnor:
        map[n] = out.add_not(balanced_tree(out, GateType::Xor, std::move(fi)));
        break;
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < net.po_count(); ++i)
    out.add_po(map[net.po(i)], net.po_name(i));
  maybe_check_invariants(out, "decompose2");
  return out;
}

Network expand_xor(const Network& net) {
  Network out;
  std::vector<NodeId> map(net.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    map[net.pis()[i]] = out.add_pi(net.name(net.pis()[i]));
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    for (const NodeId f : net.fanins(n)) fi.push_back(map[f]);
    if (t == GateType::Xor || t == GateType::Xnor) {
      if (fi.size() != 2)
        throw std::invalid_argument("expand_xor: run decompose2 first");
      // a ⊕ b = (a + b) · (a·b)'.
      const NodeId sum = out.add_or(fi[0], fi[1]);
      const NodeId both = out.add_and(fi[0], fi[1]);
      const NodeId x = out.add_and(sum, out.add_not(both));
      map[n] = t == GateType::Xor ? x : out.add_not(x);
    } else {
      map[n] = out.add_gate(t, std::move(fi));
    }
  }
  for (std::size_t i = 0; i < net.po_count(); ++i)
    out.add_po(map[net.po(i)], net.po_name(i));
  maybe_check_invariants(out, "expand_xor");
  return out;
}

Network permute_pis(const Network& net, const std::vector<std::size_t>& perm) {
  assert(perm.size() == net.pi_count());
  Network out;
  std::vector<NodeId> map(net.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const NodeId old_pi = net.pis()[perm[k]];
    map[old_pi] = out.add_pi(net.name(old_pi));
  }
  for (const NodeId n : net.topo_order()) {
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    for (const NodeId f : net.fanins(n)) fi.push_back(map[f]);
    map[n] = out.add_gate(t, std::move(fi));
  }
  for (std::size_t i = 0; i < net.po_count(); ++i)
    out.add_po(map[net.po(i)], net.po_name(i));
  maybe_check_invariants(out, "permute_pis");
  return out;
}

std::vector<std::size_t> spectrum_friendly_pi_order(const Network& spec) {
  std::vector<uint32_t> reach(spec.pi_count(), 0);
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    // PIs in the cone of PO j.
    std::vector<bool> seen(spec.node_count(), false);
    std::vector<NodeId> stack{spec.po(j)};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      if (seen[n]) continue;
      seen[n] = true;
      if (spec.type(n) == GateType::Pi) ++reach[spec.pi_index(n)];
      for (const NodeId f : spec.fanins(n)) stack.push_back(f);
    }
  }
  std::vector<std::size_t> order(spec.pi_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return reach[a] < reach[b];
  });
  return order;
}

Network sweep(const Network& net) {
  Network out;
  std::vector<NodeId> map(net.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    map[net.pis()[i]] = out.add_pi(net.name(net.pis()[i]));
  const auto live = net.live_mask();
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    for (const NodeId f : net.fanins(n)) fi.push_back(map[f]);
    map[n] = out.add_gate(t, std::move(fi));
    if (!net.name(n).empty()) out.set_name(map[n], net.name(n));
  }
  for (std::size_t i = 0; i < net.po_count(); ++i)
    out.add_po(map[net.po(i)], net.po_name(i));
  maybe_check_invariants(out, "sweep");
  return out;
}

} // namespace rmsyn
