// 64-way bit-parallel simulation. The paper's redundancy-removal procedure
// is driven by simulating small pattern sets (AZ, AO, OC, SA1) — this
// simulator evaluates 64 patterns per word per pass.
#pragma once

#include <vector>

#include "network/network.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

/// A batch of input patterns: pattern p assigns bit p of `bits[i]` to PI i.
struct PatternSet {
  std::size_t num_patterns = 0;
  std::vector<BitVec> bits; // one BitVec of num_patterns bits per PI

  explicit PatternSet(std::size_t num_pis = 0, std::size_t num_patterns_ = 0)
      : num_patterns(num_patterns_),
        bits(num_pis, BitVec(num_patterns_)) {}

  /// Appends one pattern given as a PI-indexed assignment.
  void append(const BitVec& assignment);
};

/// Simulates all patterns; result[n] holds node n's value for each pattern.
std::vector<BitVec> simulate(const Network& net, const PatternSet& patterns);

/// Simulates `count` uniformly random patterns (seeded).
PatternSet random_patterns(std::size_t num_pis, std::size_t count, uint64_t seed);

} // namespace rmsyn
