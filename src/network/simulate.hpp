// 64-way bit-parallel simulation. The paper's redundancy-removal procedure
// is driven by simulating small pattern sets (AZ, AO, OC, SA1) — this
// simulator evaluates 64 patterns per word per pass.
#pragma once

#include <vector>

#include "network/network.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

/// A batch of input patterns: pattern p assigns bit p of `bits[i]` to PI i.
struct PatternSet {
  std::size_t num_patterns = 0;
  std::vector<BitVec> bits; // one BitVec of num_patterns bits per PI

  explicit PatternSet(std::size_t num_pis = 0, std::size_t num_patterns_ = 0)
      : num_patterns(num_patterns_),
        bits(num_pis, BitVec(num_patterns_)) {}

  /// Appends one pattern given as a PI-indexed assignment.
  void append(const BitVec& assignment);

  /// Pre-allocates storage for `expected_patterns` so a run of append()
  /// calls never reallocates the per-PI rows; num_patterns is unchanged.
  void reserve(std::size_t expected_patterns);
};

class ThreadPool;

/// Simulates all patterns; result[n] holds node n's value for each pattern.
/// With a pool, the pattern words are sharded across workers: each shard
/// runs the full topological pass over its disjoint word range of the
/// pre-allocated value rows, so the result is bit-identical to serial by
/// construction (bitwise gate evaluation is word-local).
std::vector<BitVec> simulate(const Network& net, const PatternSet& patterns,
                             ThreadPool* pool = nullptr);

/// Simulates `count` uniformly random patterns (seeded).
PatternSet random_patterns(std::size_t num_pis, std::size_t count, uint64_t seed);

/// Word-aligned slice [first_pattern, first_pattern + count) of a pattern
/// set; `first_pattern` must be a multiple of 64. Used to split fault
/// simulation into blocks that detected faults drop out of (sim/sim.hpp).
PatternSet pattern_block(const PatternSet& ps, std::size_t first_pattern,
                         std::size_t count);

} // namespace rmsyn
