// Cost metrics in the paper's units.
//
// The pre-mapping columns of Table 2 count circuits in 2-input AND/OR gates:
// an n-ary AND/OR is n-1 two-input gates, each 2-input XOR/XNOR is three
// AND/OR gates (a ⊕ b = (a+b)·(ab)'), and inverters are free. The paper's
// "lits" figure is twice the 2-input gate count (every 2-input gate has two
// literals) — e.g. the closed-form t481 network is 25 gates / 50 lits,
// matching the paper's table.
#pragma once

#include <cstdint>
#include <string>

#include "network/network.hpp"

namespace rmsyn {

struct NetworkStats {
  std::size_t num_pis = 0;
  std::size_t num_pos = 0;
  std::size_t num_nodes = 0;       ///< live internal gates (any arity)
  std::size_t num_inverters = 0;   ///< live NOT gates
  std::size_t num_xor2 = 0;        ///< 2-input XOR/XNOR equivalents
  std::size_t gates2 = 0;          ///< 2-input AND/OR gate equivalents (XOR=3)
  std::size_t lits = 0;            ///< paper metric: 2 * gates2
  std::size_t depth = 0;           ///< levels over 2-input decomposition
};

NetworkStats network_stats(const Network& net);

/// One-line human-readable rendering.
std::string to_string(const NetworkStats& s);

} // namespace rmsyn
