// Network export: BLIF (for interchange with SIS/ABC/mockturtle) and
// Graphviz dot (for documentation and debugging).
#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace rmsyn {

/// Writes the network in BLIF. Requires gates of arity <= 2 for XOR/XNOR
/// (run decompose2 first for wider parity gates).
void write_blif(std::ostream& out, const Network& net,
                const std::string& model_name = "rmsyn");
std::string write_blif_string(const Network& net,
                              const std::string& model_name = "rmsyn");

/// Reads a combinational BLIF model (.model/.inputs/.outputs/.names with
/// single-output covers; latches and subcircuits are rejected). Each .names
/// block becomes an OR-of-AND gate cone. Throws std::runtime_error on
/// malformed or sequential input.
Network read_blif(std::istream& in);
Network read_blif_string(const std::string& text);

std::string to_dot(const Network& net, const std::string& name = "net");

} // namespace rmsyn
