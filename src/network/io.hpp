// Network export: BLIF (for interchange with SIS/ABC/mockturtle) and
// Graphviz dot (for documentation and debugging).
#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace rmsyn {

/// Writes the network in BLIF. Requires gates of arity <= 2 for XOR/XNOR
/// (run decompose2 first for wider parity gates).
void write_blif(std::ostream& out, const Network& net,
                const std::string& model_name = "rmsyn");
std::string write_blif_string(const Network& net,
                              const std::string& model_name = "rmsyn");

/// Reads a combinational BLIF model (.model/.inputs/.outputs/.names with
/// single-output covers; latches and subcircuits are rejected). Each .names
/// block becomes an OR-of-AND gate cone. Throws std::runtime_error on
/// malformed or sequential input.
Network read_blif(std::istream& in);
Network read_blif_string(const std::string& text);

/// Reads a combinational AIGER file, ascii ("aag") or binary ("aig")
/// auto-detected from the header. Latches are rejected. Each and-gate
/// becomes a 2-input AND node; complemented literals become NOT nodes
/// (one shared inverter per variable). PI/PO names come from the symbol
/// table when present, else "i<k>"/"o<k>". Throws std::runtime_error on
/// malformed input. Streams must be opened in binary mode for "aig".
Network read_aiger(std::istream& in);
Network read_aiger_string(const std::string& text);

/// Writes the live cone as AIGER, ascii "aag" (default) or binary "aig".
/// Every gate is lowered on the fly to 2-input ANDs plus complemented
/// edges (OR/NAND/NOR via De Morgan, XOR/XNOR via three ANDs); the
/// network itself is not modified.
void write_aiger(std::ostream& out, const Network& net, bool binary = false);
std::string write_aiger_string(const Network& net, bool binary = false);

std::string to_dot(const Network& net, const std::string& name = "net");

} // namespace rmsyn
