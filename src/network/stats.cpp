#include "network/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace rmsyn {

namespace {

std::size_t ceil_log2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

} // namespace

NetworkStats network_stats(const Network& net) {
  NetworkStats s;
  s.num_pis = net.pi_count();
  s.num_pos = net.po_count();
  const auto live = net.live_mask();
  std::vector<std::size_t> level(net.node_count(), 0);
  for (const NodeId n : net.topo_order()) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    const std::size_t k = net.fanins(n).size();
    std::size_t in_level = 0;
    for (const NodeId f : net.fanins(n)) in_level = std::max(in_level, level[f]);
    switch (t) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf:
        level[n] = in_level;
        ++s.num_nodes;
        break;
      case GateType::Not:
        level[n] = in_level; // inverters are free in the paper's metric
        ++s.num_nodes;
        ++s.num_inverters;
        break;
      case GateType::And: case GateType::Or:
      case GateType::Nand: case GateType::Nor:
        s.gates2 += k - 1;
        level[n] = in_level + ceil_log2(std::max<std::size_t>(k, 2));
        ++s.num_nodes;
        break;
      case GateType::Xor: case GateType::Xnor:
        s.gates2 += 3 * (k - 1);
        s.num_xor2 += k - 1;
        // An expanded XOR2 is two levels of AND/OR.
        level[n] = in_level + 2 * ceil_log2(std::max<std::size_t>(k, 2));
        ++s.num_nodes;
        break;
    }
    s.depth = std::max(s.depth, level[n]);
  }
  s.lits = 2 * s.gates2;
  return s;
}

std::string to_string(const NetworkStats& s) {
  std::ostringstream out;
  out << "pi=" << s.num_pis << " po=" << s.num_pos << " nodes=" << s.num_nodes
      << " xor2=" << s.num_xor2 << " gates2=" << s.gates2 << " lits=" << s.lits
      << " depth=" << s.depth;
  return out.str();
}

} // namespace rmsyn
