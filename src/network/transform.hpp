// Structural network transforms shared by all flows: constant propagation +
// structural hashing (strash), decomposition into 2-input gates (the paper's
// balanced trees), XOR expansion into AND/OR gates (the paper's cost model
// for standard cells), and dead-node sweeping.
#pragma once

#include "network/network.hpp"

namespace rmsyn {

/// Rebuilds the network with constants propagated, buffers/double-inverters
/// collapsed, fanin duplicates and complement pairs simplified, and
/// structurally identical gates merged. Nand/Nor/Xnor are normalized to
/// Not(And/Or/Xor). The result contains only live nodes.
Network strash(const Network& net);

/// Replaces every gate of more than two inputs by a balanced binary tree of
/// 2-input gates (the paper's "balanced binary tree of XOR gates" applies
/// the same shape to all associative gates).
Network decompose2(const Network& net);

/// Replaces each 2-input XOR/XNOR by three 2-input AND/OR gates plus
/// inverters: a ⊕ b = (a + b)·(a·b)'. Input must be 2-input decomposed.
Network expand_xor(const Network& net);

/// Removes nodes not reachable from any PO (PIs are kept).
Network sweep(const Network& net);

/// Returns the same logic with the primary inputs re-listed so that new PI
/// position k is old PI position perm[k]. Gate structure and PO order are
/// unchanged; only the PI enumeration (and therefore the BDD variable order
/// derived from it) changes.
Network permute_pis(const Network& net, const std::vector<std::size_t>& perm);

/// Spectrum-friendly PI permutation (new position k holds old PI order[k]):
/// inputs reaching few POs first, inputs feeding long chains (carry-ins,
/// low-order operand bits) last. With this order the decision-diagram
/// subgraphs of carry-like functions are shared across outputs; both the
/// shared-OFDD and the KFDD constructions rely on it.
std::vector<std::size_t> spectrum_friendly_pi_order(const Network& spec);

} // namespace rmsyn
