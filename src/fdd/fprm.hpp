// Fixed-Polarity Reed-Muller forms and their ordered functional decision
// diagrams (OFDDs) — Section 2 of the paper.
//
// Representation note. The paper derives the OFDD from the binary decision
// tree whose paths to the 1-terminal are the FPRM cubes, merging isomorphic
// subtrees (BDD-style reduction, both 0- and 1-branches kept). That graph is
// precisely the ROBDD of the *Reed-Muller coefficient function*
//
//    R_f(S) = 1  iff the cube  ∏_{i∈S} lit_i  appears in the FPRM of f,
//
// viewed as a Boolean function of the "presence bits" S. We therefore store
// OFDDs as plain BddRefs in the shared BddManager:
//   * positive Davio on x:  f = f_x̄ ⊕ x·(f_x̄ ⊕ f_x)   →  node(x, lo=R(f_x̄), hi=R(f⊕))
//   * negative Davio on x:  f = f_x ⊕ x̄·(f_x̄ ⊕ f_x)   →  node(x, lo=R(f_x),  hi=R(f⊕))
// A node *skipped* on a path (lo-child == hi-child before reduction) means
// both "literal present" and "literal absent" cubes exist — the paper's
// "2^(n-k) cubes per path with k nonterminal nodes".
//
// Everything downstream (cube extraction for factorization Method 1, initial
// network construction for Method 2, polarity search) operates on this view.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "tt/truth_table.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

/// A fixed-polarity Reed-Muller form: XOR of cubes over a support set with a
/// per-variable polarity (the paper's polarity vector).
struct FprmForm {
  int nvars = 0;             ///< global input count of the function
  std::vector<int> support;  ///< ascending global variable ids f depends on
  BitVec polarity;           ///< global width; bit v = 1 → literal is x_v, 0 → x̄_v
  /// Each cube is a mask over *support positions*: bit i set means literal
  /// of variable support[i] (with its fixed polarity) is in the cube. The
  /// all-zero mask is the constant-1 cube.
  std::vector<BitVec> cubes;
  /// True when cube extraction stopped at the cap (cubes is then a prefix).
  bool truncated = false;

  std::size_t cube_count() const { return cubes.size(); }
  bool has_constant_one_cube() const;
  /// Total number of literals across cubes.
  std::size_t literal_count() const;
  /// Evaluates the form on a full primary-input assignment.
  bool eval(const BitVec& assignment) const;
};

/// The OFDD of one output: the Reed-Muller spectrum as a BDD, plus the data
/// needed to interpret it.
struct Ofdd {
  BddRef root = BddManager::kFalse;
  std::vector<int> support;
  BitVec polarity;
};

/// Computes the Reed-Muller spectrum R_f of `f` over exactly the variables
/// in `vars` (ascending; must contain support(f)) under the given polarity
/// vector. The result is a BDD over the same variable ids, interpreted as
/// presence bits.
BddRef rm_spectrum(BddManager& mgr, BddRef f, const std::vector<int>& vars,
                   const BitVec& polarity);

/// Inverse of rm_spectrum: rebuilds the function BDD from a spectrum
/// (used by tests to check the transform is an involution-like pair).
BddRef rm_inverse(BddManager& mgr, BddRef spectrum, const std::vector<int>& vars,
                  const BitVec& polarity);

/// Number of FPRM cubes = number of satisfying presence assignments of the
/// spectrum, restricted to `vars`.
double fprm_cube_count(BddManager& mgr, BddRef spectrum,
                       const std::vector<int>& vars);

/// Builds the OFDD of f under `polarity` (support is computed internally).
Ofdd build_ofdd(BddManager& mgr, BddRef f, const BitVec& polarity);

/// Extracts the explicit FPRM cube list from an OFDD. Stops after
/// `cube_limit` cubes and sets `truncated`.
FprmForm extract_fprm(BddManager& mgr, const Ofdd& ofdd, int nvars,
                      std::size_t cube_limit = std::size_t{1} << 20);

class ThreadPool;

struct PolarityOptions {
  /// Supports of size <= exhaustive_limit are searched exhaustively
  /// (2^k spectra); larger supports use iterated greedy bit-flips.
  int exhaustive_limit = 8;
  int greedy_passes = 3;
  /// Level-2 parallelism (see sched/pool.hpp): the exhaustive scan fans
  /// its candidate polarity vectors out in chunks to per-worker manager
  /// clones and reduces by (cost, polarity-vector) lexicographic order, so
  /// the chosen polarity is bit-identical to the serial ascending scan.
  /// The greedy bit-flip descent is inherently sequential (each flip
  /// starts from the previous accept) and always runs serially. Null =
  /// fully serial.
  ThreadPool* pool = nullptr;
  /// Fan out only when the exhaustive scan has at least this many
  /// candidate vectors (smaller scans are cheaper than a task round-trip).
  uint64_t parallel_min_masks = 32;
};

/// Searches for the polarity vector minimizing the FPRM cube count
/// (tie-break: spectrum node count). Returns a global-width polarity vector
/// (bits outside the support are 1/positive).
BitVec best_polarity(BddManager& mgr, BddRef f, const PolarityOptions& opt = {});

/// Single polarity vector for a multi-output function, minimizing the total
/// cube count over all outputs (tie-break: total spectrum size). Used by the
/// shared-OFDD construction, where one polarity per PI is required for
/// cross-output sharing.
BitVec best_polarity_multi(BddManager& mgr, const std::vector<BddRef>& fs,
                           const PolarityOptions& opt = {});

/// The paper's prime cubes (after Csanky et al.): cube p is prime in f iff
/// support(p) is not properly contained in the support of any other cube.
/// Returns one flag per cube of the form. (For cubes, support == the cube
/// mask itself since each variable appears at most once.)
std::vector<bool> prime_flags(const FprmForm& form);

/// Oracle path used by tests: FPRM spectrum of a truth table via the GF(2)
/// butterfly, with per-variable polarities applied by swapping cofactors.
TruthTable fprm_spectrum_tt(const TruthTable& f, const BitVec& polarity);

/// Expands an FprmForm back into a truth table (small nvars only).
TruthTable fprm_to_tt(const FprmForm& form);

} // namespace rmsyn
