#include "fdd/esop.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "equiv/equiv.hpp"
#include "fdd/kfdd.hpp"
#include "network/transform.hpp"

namespace rmsyn {

bool Esop::eval(uint64_t minterm) const {
  bool acc = false;
  for (const auto& c : cubes)
    if (c.eval(minterm)) acc = !acc;
  return acc;
}

std::size_t Esop::literal_count() const {
  std::size_t n = 0;
  for (const auto& c : cubes) n += static_cast<std::size_t>(c.literal_count());
  return n;
}

TruthTable Esop::to_truth_table() const {
  return TruthTable::from_function(nvars,
                                   [this](uint64_t m) { return eval(m); });
}

Esop esop_from_fprm(const FprmForm& form) {
  Esop e;
  e.nvars = form.nvars;
  for (const auto& mask : form.cubes) {
    Cube c(form.nvars);
    for (std::size_t i = mask.first_set(); i != BitVec::npos;
         i = mask.next_set(i + 1)) {
      const int v = form.support[i];
      if (form.polarity.get(static_cast<std::size_t>(v))) c.add_pos(v);
      else c.add_neg(v);
    }
    e.cubes.push_back(std::move(c));
  }
  return e;
}

namespace {

/// Per-variable literal state.
enum class LitState : uint8_t { Absent, Pos, Neg };

LitState state_of(const Cube& c, int v) {
  if (c.has_pos(v)) return LitState::Pos;
  if (c.has_neg(v)) return LitState::Neg;
  return LitState::Absent;
}

void set_state(Cube& c, int v, LitState s) {
  switch (s) {
    case LitState::Absent: c.drop_var(v); break;
    case LitState::Pos: c.add_pos(v); break;
    case LitState::Neg: c.add_neg(v); break;
  }
}

/// The GF(2) combine of two distinct states: x·C ⊕ x̄·C = C,
/// x·C ⊕ C = x̄·C, x̄·C ⊕ C = x·C — always "the third state".
LitState third_state(LitState a, LitState b) {
  assert(a != b);
  if (a != LitState::Absent && b != LitState::Absent) return LitState::Absent;
  if (a != LitState::Pos && b != LitState::Pos) return LitState::Pos;
  return LitState::Neg;
}

/// Variables where the two cubes' literal states differ.
std::vector<int> diff_vars(const Cube& a, const Cube& b) {
  std::vector<int> out;
  for (int v = 0; v < a.nvars(); ++v)
    if (state_of(a, v) != state_of(b, v)) out.push_back(v);
  return out;
}

} // namespace

void esop_minimize(Esop& esop, const EsopMinimizeOptions& opt) {
  auto& cs = esop.cubes;
  // The pairwise passes are quadratic; past this size only the cheap
  // distance-0/1 merging runs, and only for a couple of passes.
  const bool large = cs.size() > 512;

  const auto merge_d01 = [&]() {
    bool changed = false;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      for (std::size_t j = i + 1; j < cs.size(); ++j) {
        const auto d = diff_vars(cs[i], cs[j]);
        if (d.size() == 0) {
          // C ⊕ C = 0.
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          --i;
          break;
        }
        if (d.size() == 1) {
          const int v = d[0];
          set_state(cs[i], v, third_state(state_of(cs[i], v), state_of(cs[j], v)));
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          --i;
          break;
        }
      }
    }
    return changed;
  };

  // Would cube c merge (distance <= 1) with any cube other than skip/skip2?
  const auto has_partner = [&](const Cube& c, std::size_t skip,
                               std::size_t skip2) {
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (k == skip || k == skip2) continue;
      if (diff_vars(c, cs[k]).size() <= 1) return true;
    }
    return false;
  };

  for (int pass = 0; pass < (large ? std::min(opt.max_passes, 2) : opt.max_passes);
       ++pass) {
    bool changed = merge_d01();
    if (opt.use_distance2 && !large) {
      // Distance-2 exorlink: A ⊕ B = D1 ⊕ D2 with
      //   D1 = A with var u combined,   D2 = A with u from B, v combined
      // (and symmetrically with u/v swapped). Accept when it reduces
      // literals or sets up a distance-<=1 merge.
      for (std::size_t i = 0; i < cs.size(); ++i) {
        for (std::size_t j = i + 1; j < cs.size(); ++j) {
          const auto d = diff_vars(cs[i], cs[j]);
          if (d.size() != 2) continue;
          const int old_lits =
              cs[i].literal_count() + cs[j].literal_count();
          bool applied = false;
          for (int ordering = 0; ordering < 2 && !applied; ++ordering) {
            const int u = d[ordering];
            const int v = d[1 - ordering];
            Cube d1 = cs[i];
            set_state(d1, u, third_state(state_of(cs[i], u), state_of(cs[j], u)));
            Cube d2 = cs[i];
            set_state(d2, u, state_of(cs[j], u));
            set_state(d2, v, third_state(state_of(cs[i], v), state_of(cs[j], v)));
            const int new_lits = d1.literal_count() + d2.literal_count();
            const bool gains = new_lits < old_lits ||
                               has_partner(d1, i, j) || has_partner(d2, i, j);
            if (gains && !(d1 == cs[i] && d2 == cs[j])) {
              cs[i] = d1;
              cs[j] = d2;
              applied = true;
              changed = true;
            }
          }
        }
      }
      changed |= merge_d01();
    }
    if (!changed) break;
  }
}

namespace {

/// Section-3 cube factorizer generalized to mixed-polarity cubes.
class EsopFactorizer {
public:
  EsopFactorizer(Network& net, const std::vector<NodeId>& pi_nodes)
      : net_(&net), pis_(&pi_nodes) {}

  NodeId factor(std::vector<Cube> cubes) {
    // Cancel duplicate pairs.
    std::sort(cubes.begin(), cubes.end());
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes.size();) {
      if (i + 1 < cubes.size() && cubes[i] == cubes[i + 1]) i += 2;
      else kept.push_back(cubes[i++]);
    }
    return factor_rec(std::move(kept));
  }

private:
  NodeId lit_node(int v, bool positive) {
    const NodeId pi = (*pis_)[static_cast<std::size_t>(v)];
    return positive ? pi : net_->add_not(pi);
  }

  NodeId cube_node(const Cube& c) {
    std::vector<NodeId> leaves;
    for (int v = 0; v < c.nvars(); ++v) {
      if (c.has_pos(v)) leaves.push_back(lit_node(v, true));
      else if (c.has_neg(v)) leaves.push_back(lit_node(v, false));
    }
    if (leaves.empty()) return Network::kConst1;
    if (leaves.size() == 1) return leaves[0];
    return net_->add_gate(GateType::And, std::move(leaves));
  }

  static std::vector<std::vector<std::size_t>> disjoint_groups(
      const std::vector<Cube>& cubes) {
    std::vector<BitVec> supports;
    supports.reserve(cubes.size());
    for (const auto& c : cubes) supports.push_back(c.support());
    return group_supports(supports);
  }

  static std::vector<std::vector<std::size_t>> group_supports(
      const std::vector<BitVec>& supports) {
    std::vector<std::size_t> parent(supports.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    if (!supports.empty()) {
      std::vector<std::size_t> owner(supports[0].size(), BitVec::npos);
      for (std::size_t i = 0; i < supports.size(); ++i) {
        for (std::size_t b = supports[i].first_set(); b != BitVec::npos;
             b = supports[i].next_set(b + 1)) {
          if (owner[b] == BitVec::npos) owner[b] = i;
          else parent[find(i)] = find(owner[b]);
        }
      }
    }
    std::vector<std::vector<std::size_t>> groups;
    std::vector<std::size_t> slot(supports.size(), BitVec::npos);
    for (std::size_t i = 0; i < supports.size(); ++i) {
      const std::size_t r = find(i);
      if (slot[r] == BitVec::npos) {
        slot[r] = groups.size();
        groups.emplace_back();
      }
      groups[slot[r]].push_back(i);
    }
    return groups;
  }

  NodeId factor_rec(std::vector<Cube> cubes) {
    if (cubes.empty()) return Network::kConst0;
    if (cubes.size() == 1) return cube_node(cubes[0]);

    // Rule (b): {B, C, B·C} = B + C for clash-free B, C.
    if (cubes.size() == 3) {
      for (int top = 0; top < 3; ++top) {
        const Cube& u = cubes[static_cast<std::size_t>(top)];
        const Cube& a = cubes[static_cast<std::size_t>((top + 1) % 3)];
        const Cube& b = cubes[static_cast<std::size_t>((top + 2) % 3)];
        if (!a.clashes(b) && a.intersect(b) == u && a != u && b != u)
          return net_->add_or(cube_node(a), cube_node(b));
      }
    }

    const auto groups = disjoint_groups(cubes);
    if (groups.size() > 1) {
      std::vector<NodeId> parts;
      for (const auto& g : groups) {
        std::vector<Cube> sub;
        for (const std::size_t i : g) sub.push_back(cubes[i]);
        parts.push_back(factor_rec(std::move(sub)));
      }
      return balanced_gate_tree_xor(std::move(parts));
    }

    // Most frequent literal over the 2n-literal space.
    const int n = cubes[0].nvars();
    std::vector<int> cnt(static_cast<std::size_t>(2 * n), 0);
    for (const auto& c : cubes) {
      for (int v = 0; v < n; ++v) {
        if (c.has_pos(v)) ++cnt[static_cast<std::size_t>(2 * v)];
        else if (c.has_neg(v)) ++cnt[static_cast<std::size_t>(2 * v + 1)];
      }
    }
    int best = -1, best_cnt = 1;
    for (int l = 0; l < 2 * n; ++l) {
      if (cnt[static_cast<std::size_t>(l)] > best_cnt) {
        best_cnt = cnt[static_cast<std::size_t>(l)];
        best = l;
      }
    }
    if (best < 0) {
      std::vector<NodeId> leaves;
      for (const auto& c : cubes) leaves.push_back(cube_node(c));
      return balanced_gate_tree_xor(std::move(leaves));
    }

    const int v = best / 2;
    const bool positive = best % 2 == 0;
    std::vector<Cube> quotient, remainder;
    bool quotient_has_one = false;
    for (auto& c : cubes) {
      const bool in = positive ? c.has_pos(v) : c.has_neg(v);
      if (in) {
        Cube q = c;
        q.drop_var(v);
        if (q.is_universal()) quotient_has_one = true;
        else quotient.push_back(std::move(q));
      } else {
        remainder.push_back(std::move(c));
      }
    }
    const NodeId lit = lit_node(v, positive);
    NodeId factored;
    if (quotient_has_one) {
      // Rule (a): lit ⊕ lit·Q = lit·Q̄.
      if (quotient.empty()) factored = lit;
      else factored = net_->add_and(lit, net_->add_not(factor_rec(std::move(quotient))));
    } else {
      const NodeId q = factor_rec(std::move(quotient));
      factored = q == Network::kConst1 ? lit : net_->add_and(lit, q);
    }
    if (remainder.empty()) return factored;
    return net_->add_xor(factored, factor_rec(std::move(remainder)));
  }

  NodeId balanced_gate_tree_xor(std::vector<NodeId> leaves) {
    if (leaves.empty()) return Network::kConst0;
    while (leaves.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
        next.push_back(net_->add_xor(leaves[i], leaves[i + 1]));
      if (leaves.size() % 2 == 1) next.push_back(leaves.back());
      leaves = std::move(next);
    }
    return leaves[0];
  }

  Network* net_;
  const std::vector<NodeId>* pis_;
};

} // namespace

NodeId factor_esop(Network& net, const std::vector<NodeId>& pi_nodes,
                   const Esop& esop) {
  EsopFactorizer fac(net, pi_nodes);
  return fac.factor(esop.cubes);
}

Network esop_synthesize(const Network& spec, const EsopMinimizeOptions& opt,
                        std::vector<std::size_t>* cube_counts) {
  BddManager mgr(static_cast<int>(spec.pi_count()));
  const std::vector<BddRef> outs = output_bdds(mgr, spec);
  for (const BddRef f : outs) mgr.ref(f);

  Network net;
  std::vector<NodeId> pis;
  for (std::size_t i = 0; i < spec.pi_count(); ++i)
    pis.push_back(net.add_pi(spec.name(spec.pis()[i])));
  if (cube_counts != nullptr) cube_counts->clear();

  // Outputs beyond this cube count are not worth explicit ESOP treatment
  // (the quadratic exorlink passes dominate); they fall back to the
  // decision-diagram construction below.
  constexpr std::size_t kCubeCap = 2'000;
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    const BddRef f = outs[j];
    if (f == mgr.bdd_false() || f == mgr.bdd_true()) {
      net.add_po(net.constant(f == mgr.bdd_true()), spec.po_name(j));
      if (cube_counts != nullptr) cube_counts->push_back(f == mgr.bdd_true());
      continue;
    }
    const BitVec pol = best_polarity(mgr, f);
    const Ofdd ofdd = build_ofdd(mgr, f, pol);
    const FprmForm form =
        extract_fprm(mgr, ofdd, static_cast<int>(spec.pi_count()), kCubeCap);
    if (form.truncated) {
      // Cube list too large to minimize explicitly: fall back to a pure
      // Davio decision-diagram construction for this output.
      KfddBuilder builder(net, pis, mgr,
                          std::vector<Expansion>(spec.pi_count(),
                                                 Expansion::PositiveDavio));
      net.add_po(builder.build(f), spec.po_name(j));
      if (cube_counts != nullptr) cube_counts->push_back(kCubeCap);
      mgr.gc();
      continue;
    }
    Esop esop = esop_from_fprm(form);
    esop_minimize(esop, opt);
    if (cube_counts != nullptr) cube_counts->push_back(esop.cubes.size());
    net.add_po(factor_esop(net, pis, esop), spec.po_name(j));
    // The polarity search and spectrum for this output are dead now.
    mgr.gc();
  }
  for (const BddRef f : outs) mgr.deref(f);
  return strash(net);
}

} // namespace rmsyn
