#include "fdd/fprm.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "sched/pool.hpp"

namespace rmsyn {

bool FprmForm::has_constant_one_cube() const {
  return std::any_of(cubes.begin(), cubes.end(),
                     [](const BitVec& c) { return c.none(); });
}

std::size_t FprmForm::literal_count() const {
  std::size_t n = 0;
  for (const auto& c : cubes) n += c.count();
  return n;
}

bool FprmForm::eval(const BitVec& assignment) const {
  bool acc = false;
  for (const auto& cube : cubes) {
    bool term = true;
    for (std::size_t i = 0; i < support.size() && term; ++i) {
      if (!cube.get(i)) continue;
      const auto v = static_cast<std::size_t>(support[i]);
      const bool lit = polarity.get(v) ? assignment.get(v) : !assignment.get(v);
      term = lit;
    }
    acc ^= term;
  }
  return acc;
}

namespace {

// Memo key: (node ref, depth). Refs fit 32 bits (29 used); pack exactly.
uint64_t memo_key(BddRef f, std::size_t depth) {
  return (static_cast<uint64_t>(depth) << 32) | f;
}

// The per-variable Reed-Muller transform commutes, so the spectrum can be
// built in any variable order; descending the diagram requires the current
// level order of the manager.
std::vector<int> by_level(const BddManager& mgr, const std::vector<int>& vars) {
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end(),
            [&](int a, int b) { return mgr.level_of(a) < mgr.level_of(b); });
  return sorted;
}

} // namespace

BddRef rm_spectrum(BddManager& mgr, BddRef f, const std::vector<int>& vars,
                   const BitVec& polarity) {
  // The walk below captures the level order, so it must not shift mid-build.
  BddManager::ReorderHold hold(mgr);
  const std::vector<int> ordered = by_level(mgr, vars);
  std::unordered_map<uint64_t, BddRef> memo;
  const std::function<BddRef(BddRef, std::size_t)> rec =
      [&](BddRef g, std::size_t depth) -> BddRef {
    if (BddManager::is_invalid(g)) return BddManager::kInvalid;
    if (depth == ordered.size()) {
      assert(mgr.is_terminal(g));
      return g;
    }
    const uint64_t key = memo_key(g, depth);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const int v = ordered[depth];
    const BddRef g0 = mgr.cofactor(g, v, false);
    const BddRef g1 = mgr.cofactor(g, v, true);
    const BddRef gd = mgr.bdd_xor(g0, g1); // Boolean difference
    if (BddManager::is_invalid(gd)) return BddManager::kInvalid;
    const bool pos = polarity.get(static_cast<std::size_t>(v));
    const BddRef lo = rec(pos ? g0 : g1, depth + 1);
    if (BddManager::is_invalid(lo)) return BddManager::kInvalid;
    const BddRef hi = rec(gd, depth + 1);
    if (BddManager::is_invalid(hi)) return BddManager::kInvalid;
    const BddRef r = mgr.mk_node(v, lo, hi);
    memo.emplace(key, r);
    return r;
  };
  return rec(f, 0);
}

BddRef rm_inverse(BddManager& mgr, BddRef spectrum, const std::vector<int>& vars,
                  const BitVec& polarity) {
  BddManager::ReorderHold hold(mgr);
  const std::vector<int> ordered = by_level(mgr, vars);
  std::unordered_map<uint64_t, BddRef> memo;
  const std::function<BddRef(BddRef, std::size_t)> rec =
      [&](BddRef r, std::size_t depth) -> BddRef {
    if (BddManager::is_invalid(r)) return BddManager::kInvalid;
    if (depth == ordered.size()) {
      assert(mgr.is_terminal(r));
      return r;
    }
    const uint64_t key = memo_key(r, depth);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const int v = ordered[depth];
    BddRef r_lo = r, r_hi = r;
    if (!mgr.is_terminal(r) && mgr.var_of(r) == v) {
      r_lo = mgr.lo_of(r);
      r_hi = mgr.hi_of(r);
    }
    const BddRef base = rec(r_lo, depth + 1);  // part without the literal
    if (BddManager::is_invalid(base)) return BddManager::kInvalid;
    const BddRef diff = rec(r_hi, depth + 1);  // coefficient of the literal
    if (BddManager::is_invalid(diff)) return BddManager::kInvalid;
    const bool pos = polarity.get(static_cast<std::size_t>(v));
    const BddRef lit = mgr.literal(v, pos);
    const BddRef g = mgr.bdd_xor(base, mgr.bdd_and(lit, diff));
    if (BddManager::is_invalid(g)) return BddManager::kInvalid;
    memo.emplace(key, g);
    return g;
  };
  return rec(spectrum, 0);
}

double fprm_cube_count(BddManager& mgr, BddRef spectrum,
                       const std::vector<int>& vars) {
  // sat_count counts over all manager variables; scale down to the
  // projection onto `vars`.
  double scale = 1.0;
  for (int i = 0; i < mgr.nvars() - static_cast<int>(vars.size()); ++i)
    scale *= 2.0;
  return mgr.sat_count(spectrum) / scale;
}

Ofdd build_ofdd(BddManager& mgr, BddRef f, const BitVec& polarity) {
  Ofdd o;
  const BitVec sup = mgr.support(f);
  for (std::size_t v = sup.first_set(); v != BitVec::npos; v = sup.next_set(v + 1))
    o.support.push_back(static_cast<int>(v));
  o.polarity = polarity;
  o.root = rm_spectrum(mgr, f, o.support, polarity);
  return o;
}

FprmForm extract_fprm(BddManager& mgr, const Ofdd& ofdd, int nvars,
                      std::size_t cube_limit) {
  FprmForm form;
  form.nvars = nvars;
  form.support = ofdd.support;
  form.polarity = ofdd.polarity;
  const bool complete = mgr.enumerate_sat(
      ofdd.root, ofdd.support, cube_limit, [&](const BitVec& presence) {
        form.cubes.push_back(presence);
        return true;
      });
  form.truncated = !complete;
  return form;
}

namespace {

// The candidate polarity for scan position `mask`: bit i of the mask
// complements variable vars[i], everything else stays positive. Mask 0 is
// PPRM, and masks ascend, so "lowest mask at minimum cost" is exactly the
// winner of the serial ascending scan.
BitVec polarity_of_mask(const std::vector<int>& vars, uint64_t mask,
                        int nvars) {
  BitVec pol(static_cast<std::size_t>(nvars));
  pol.set_all();
  for (std::size_t i = 0; i < vars.size(); ++i)
    if ((mask >> i) & 1) pol.set(static_cast<std::size_t>(vars[i]), false);
  return pol;
}

bool identity_order(const BddManager& mgr) {
  for (int v = 0; v < mgr.nvars(); ++v)
    if (mgr.level_of(v) != v) return false;
  return true;
}

// Result of one chunk of the exhaustive scan: the minimum cost seen and the
// lowest mask achieving it (sentinels when the chunk evaluated nothing).
struct ScanBest {
  std::pair<double, std::size_t> cost{std::numeric_limits<double>::infinity(),
                                      std::numeric_limits<std::size_t>::max()};
  uint64_t mask = std::numeric_limits<uint64_t>::max();
};

// Evaluates masks [begin, end) in a fresh manager clone. A BddManager is
// single-threaded, so each chunk imports the output BDDs into its own
// manager (import_bdd only reads the source, which is quiescent while its
// owning thread waits on the futures). Both cost components are
// order-independent given the identity variable order the clone shares with
// the (guarded) parent: the cube count is a sat-count and the node count is
// canonical for ROBDDs.
ScanBest scan_polarity_chunk(const BddManager& src,
                             const std::vector<BddRef>& fs,
                             const std::vector<int>& vars,
                             const std::vector<std::vector<int>>& out_vars,
                             uint64_t begin, uint64_t end,
                             ResourceGovernor* gov) {
  ScanBest best;
  BddManager local(src.nvars());
  local.set_governor(gov);
  std::vector<BddRef> lfs;
  lfs.reserve(fs.size());
  for (const BddRef f : fs) {
    const BddRef lf = import_bdd(local, src, f);
    if (BddManager::is_invalid(lf)) return best;
    local.ref(lf);
    lfs.push_back(lf);
  }
  const std::size_t gc_watermark = local.node_count() * 2 + 2048;
  for (uint64_t mask = begin; mask < end; ++mask) {
    if (gov != nullptr && gov->exhausted()) break;
    const BitVec pol = polarity_of_mask(vars, mask, local.nvars());
    double cubes = 0;
    std::size_t nodes = 0;
    bool complete = true;
    for (std::size_t j = 0; j < lfs.size(); ++j) {
      if (out_vars[j].empty()) continue;
      const BddRef spec = rm_spectrum(local, lfs[j], out_vars[j], pol);
      if (BddManager::is_invalid(spec)) {
        complete = false;
        break;
      }
      cubes += fprm_cube_count(local, spec, out_vars[j]);
      nodes += local.size(spec);
    }
    if (local.node_count() > gc_watermark) local.gc();
    if (!complete) continue;
    const std::pair<double, std::size_t> c{cubes, nodes};
    if (c < best.cost) { // masks ascend: first hit is the lowest mask
      best.cost = c;
      best.mask = mask;
    }
  }
  return best;
}

} // namespace

BitVec best_polarity(BddManager& mgr, BddRef f, const PolarityOptions& opt) {
  // The single-output search is exactly the multi search over one output:
  // same support, same (cube count, node count) cost, same scan order.
  // Forwarding keeps the serial and parallel paths in one place.
  return best_polarity_multi(mgr, {f}, opt);
}

BitVec best_polarity_multi(BddManager& mgr, const std::vector<BddRef>& fs,
                           const PolarityOptions& opt) {
  // Union of the outputs' supports.
  BitVec sup(static_cast<std::size_t>(mgr.nvars()));
  for (const BddRef f : fs) sup |= mgr.support(f);
  std::vector<int> vars;
  for (std::size_t v = sup.first_set(); v != BitVec::npos; v = sup.next_set(v + 1))
    vars.push_back(static_cast<int>(v));

  BitVec best(static_cast<std::size_t>(mgr.nvars()));
  best.set_all();
  if (vars.empty()) return best;

  // Per-output support lists (cube counts are projections onto them).
  std::vector<std::vector<int>> out_vars;
  for (const BddRef f : fs) {
    const BitVec s = mgr.support(f);
    std::vector<int> ov;
    for (std::size_t v = s.first_set(); v != BitVec::npos; v = s.next_set(v + 1))
      ov.push_back(static_cast<int>(v));
    out_vars.push_back(std::move(ov));
  }

  // As in best_polarity: one long-lived manager, pinned inputs, periodic GC.
  for (const BddRef f : fs) mgr.ref(f);
  ResourceGovernor* gov = mgr.governor();
  const std::size_t gc_watermark = mgr.node_count() * 2 + 2048;
  const auto cost = [&](const BitVec& pol) -> std::pair<double, std::size_t> {
    double cubes = 0;
    std::size_t nodes = 0;
    for (std::size_t j = 0; j < fs.size(); ++j) {
      if (out_vars[j].empty()) continue;
      const BddRef spec = rm_spectrum(mgr, fs[j], out_vars[j], pol);
      if (BddManager::is_invalid(spec))
        return {std::numeric_limits<double>::infinity(),
                std::numeric_limits<std::size_t>::max()};
      cubes += fprm_cube_count(mgr, spec, out_vars[j]);
      nodes += mgr.size(spec);
    }
    if (mgr.node_count() > gc_watermark) mgr.gc();
    return {cubes, nodes};
  };
  const auto finish = [&](const BitVec& b) {
    for (const BddRef f : fs) mgr.deref(f);
    return b;
  };
  const auto out_of_budget = [&] { return gov != nullptr && gov->exhausted(); };

  auto best_cost = cost(best);
  if (static_cast<int>(vars.size()) <= opt.exhaustive_limit) {
    const uint64_t total = uint64_t{1} << vars.size();
    if (opt.pool != nullptr && total >= opt.parallel_min_masks &&
        identity_order(mgr)) {
      // Level-2 fan-out: chunks of the ascending-mask scan run in manager
      // clones; reducing by (cost, mask) lexicographic order reproduces the
      // serial loop below bit-for-bit. Non-identity variable orders fall
      // through to serial because the node-count tie-break depends on the
      // parent's order, which a fresh clone would not share.
      const uint64_t nchunks = std::min<uint64_t>(
          total, static_cast<uint64_t>(opt.pool->slot_count()) * 2);
      const uint64_t per = (total + nchunks - 1) / nchunks;
      std::vector<Future<ScanBest>> futs;
      for (uint64_t c = 0; c * per < total; ++c) {
        const uint64_t lo = c * per;
        const uint64_t hi = std::min(total, lo + per);
        futs.push_back(opt.pool->submit([&mgr, &fs, &vars, &out_vars, lo, hi,
                                         gov] {
          RMSYN_SPAN("polarity-chunk");
          return scan_polarity_chunk(mgr, fs, vars, out_vars, lo, hi, gov);
        }));
      }
      ScanBest overall;
      for (auto& fu : futs) {
        const ScanBest b = opt.pool->wait(fu);
        if (b.cost < overall.cost ||
            (b.cost == overall.cost && b.mask < overall.mask))
          overall = b;
      }
      if (overall.cost < best_cost)
        best = polarity_of_mask(vars, overall.mask, mgr.nvars());
      return finish(best);
    }
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (out_of_budget()) break; // keep the best polarity seen so far
      const BitVec pol = polarity_of_mask(vars, mask, mgr.nvars());
      const auto c = cost(pol);
      if (c < best_cost) {
        best_cost = c;
        best = pol;
      }
    }
    return finish(best);
  }
  for (int pass = 0; pass < opt.greedy_passes && !out_of_budget(); ++pass) {
    bool improved = false;
    for (const int v : vars) {
      if (out_of_budget()) break;
      BitVec cand = best;
      cand.flip(static_cast<std::size_t>(v));
      const auto c = cost(cand);
      if (c < best_cost) {
        best_cost = c;
        best = cand;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return finish(best);
}

std::vector<bool> prime_flags(const FprmForm& form) {
  const auto& cs = form.cubes;
  std::vector<bool> prime(cs.size(), true);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (i == j) continue;
      // Properly contained: subset and not equal.
      if (cs[i].is_subset_of(cs[j]) && cs[i] != cs[j]) {
        prime[i] = false;
        break;
      }
    }
  }
  return prime;
}

TruthTable fprm_spectrum_tt(const TruthTable& f, const BitVec& polarity) {
  // For a negative-polarity variable the FPRM expands on x̄, which equals
  // the PPRM of f with that input complemented.
  TruthTable g = f;
  for (int v = 0; v < f.nvars(); ++v) {
    if (!polarity.get(static_cast<std::size_t>(v))) {
      // Swap cofactors of variable v: g(x) := g(x with bit v flipped).
      TruthTable swapped(f.nvars());
      const uint64_t bit = uint64_t{1} << v;
      for (uint64_t m = 0; m < g.size(); ++m)
        if (g.get(m ^ bit)) swapped.set(m);
      g = swapped;
    }
  }
  g.reed_muller_transform();
  return g;
}

TruthTable fprm_to_tt(const FprmForm& form) {
  TruthTable out(form.nvars);
  for (uint64_t m = 0; m < out.size(); ++m) {
    BitVec assign(static_cast<std::size_t>(form.nvars));
    for (int v = 0; v < form.nvars; ++v)
      if ((m >> v) & 1) assign.set(static_cast<std::size_t>(v));
    if (form.eval(assign)) out.set(m);
  }
  return out;
}

} // namespace rmsyn
