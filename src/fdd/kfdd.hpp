// Kronecker functional decision diagrams — the extension direction the
// paper cites ([1] Becker/Drechsler OKFDDs, [16] Sarabi et al.): each
// variable is expanded by one of
//
//   Shannon         f = x̄·f_x̄  +  x·f_x
//   positive Davio  f = f_x̄    ⊕  x·(f_x̄ ⊕ f_x)
//   negative Davio  f = f_x    ⊕  x̄·(f_x̄ ⊕ f_x)
//
// The OFDD/FPRM flow of the paper is the all-Davio special case; mixing in
// Shannon nodes lets control-dominated functions (multiplexers, priority
// logic) avoid the XOR blow-up entirely. KfddBuilder constructs networks
// directly from the function BDDs with a memo shared across outputs (the
// same cross-output sharing the shared-OFDD builder provides), and
// `best_kfdd_decomposition` greedily searches the per-variable expansion
// choices.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace rmsyn {

enum class Expansion : uint8_t { Shannon, PositiveDavio, NegativeDavio };

/// Builds multi-output networks under a fixed per-variable expansion
/// choice. Variables are expanded in the manager's level order, which the
/// builder holds fixed (no auto-reordering) for its lifetime; do not gc()
/// the manager while a builder with a warm memo is alive.
class KfddBuilder {
public:
  KfddBuilder(Network& net, const std::vector<NodeId>& pi_nodes,
              BddManager& mgr, std::vector<Expansion> expansions);

  /// Builds (or reuses) the subnetwork computing `f`.
  NodeId build(BddRef f);

  /// True once any build hit an invalid ref (the manager's governor
  /// tripped mid-construction); the networks produced since are not
  /// trustworthy and must be discarded.
  bool failed() const { return failed_; }

private:
  NodeId build_rec(BddRef f, int level);

  Network* net_;
  const std::vector<NodeId>* pi_nodes_;
  BddManager* mgr_;
  BddManager::ReorderHold hold_;
  std::vector<Expansion> expansions_;
  std::vector<NodeId> not_cache_;
  std::unordered_map<uint64_t, NodeId> memo_; ///< (f, level) -> node
  bool failed_ = false;
};

class ThreadPool;

struct KfddSearchOptions {
  int greedy_passes = 2;
  /// Level-2 parallelism (see sched/pool.hpp): the two alternative
  /// expansions tried for each variable are evaluated concurrently in
  /// manager clones. Both candidates derive from the same accepted base and
  /// the reduction applies them in enumeration order with the same strict
  /// improvement test, so the chosen decomposition is bit-identical to the
  /// serial scan. Null = fully serial.
  ThreadPool* pool = nullptr;
};

/// Greedy per-variable search over the 3^n expansion assignments,
/// minimizing the 2-input AND/OR gate count of the resulting multi-output
/// network (XOR = 3, as everywhere in this reproduction). Starts from
/// all-positive-Davio (the paper's flow).
std::vector<Expansion> best_kfdd_decomposition(
    BddManager& mgr, const std::vector<BddRef>& outputs,
    const KfddSearchOptions& opt = {});

/// Convenience: build a complete network for `spec` using KFDD synthesis
/// (search + construction + structural cleanup). Redundancy removal can be
/// applied by the caller (pattern sets degrade to random + exact checks —
/// mixed expansions have no single FPRM cube list).
Network kfdd_synthesize(const Network& spec,
                        const KfddSearchOptions& opt = {},
                        std::vector<Expansion>* chosen = nullptr);

} // namespace rmsyn
