// ESOP (exclusive-or sum of products) minimization and factoring — the
// Section-3/Section-6 future-work direction the paper attributes to Sasao
// [17][18]: FPRM forms fix one polarity per variable, but letting each cube
// choose its own literal polarities (a general ESOP) can only shrink the
// cube list, at the price of a harder minimization problem.
//
// This module implements the EXORCISM-style local search: iterated
// *exorlink* rewrites of cube pairs at Hamming distance 0/1/2 (distance-0
// pairs cancel, distance-1 pairs merge into a single cube, distance-2 pairs
// are re-expressed through an intermediate cube that may unlock further
// merges), plus a factored-network construction that generalizes the cube
// method of Section 3 to mixed-polarity literals.
#pragma once

#include <vector>

#include "fdd/fprm.hpp"
#include "network/network.hpp"
#include "sop/cube.hpp"
#include "tt/truth_table.hpp"

namespace rmsyn {

/// An ESOP: XOR of product terms (mixed-polarity cubes over nvars inputs).
struct Esop {
  int nvars = 0;
  std::vector<Cube> cubes;

  bool eval(uint64_t minterm) const;
  std::size_t literal_count() const;
  TruthTable to_truth_table() const; ///< small nvars only
};

/// Converts an FPRM form into an (equivalent) ESOP over global variables,
/// materializing the fixed polarities into the cubes.
Esop esop_from_fprm(const FprmForm& form);

struct EsopMinimizeOptions {
  int max_passes = 12;
  /// Try distance-2 exorlink rewrites (slower; distance-0/1 always run).
  bool use_distance2 = true;
};

/// In-place exorlink minimization. Never increases the cube count;
/// functional equivalence is preserved by construction (every rewrite is a
/// GF(2) identity).
void esop_minimize(Esop& esop, const EsopMinimizeOptions& opt = {});

/// Builds a factored network computing the ESOP inside `net` (`pi_nodes`
/// maps variable id -> PI node). The factorizer mirrors Section 3's cube
/// method: disjoint-support grouping, division by the most frequent
/// literal, and the ⊕-domain reduction rules, generalized to two literal
/// polarities per variable.
NodeId factor_esop(Network& net, const std::vector<NodeId>& pi_nodes,
                   const Esop& esop);

/// Complete ESOP-based synthesis of a specification (FPRM extraction per
/// output -> exorlink minimization -> factoring -> structural cleanup).
/// Redundancy removal is up to the caller.
Network esop_synthesize(const Network& spec,
                        const EsopMinimizeOptions& opt = {},
                        std::vector<std::size_t>* cube_counts = nullptr);

} // namespace rmsyn
