#include "fdd/kfdd.hpp"

#include "obs/trace.hpp"

#include <limits>

#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "sched/pool.hpp"

namespace rmsyn {

KfddBuilder::KfddBuilder(Network& net, const std::vector<NodeId>& pi_nodes,
                         BddManager& mgr, std::vector<Expansion> expansions)
    : net_(&net), pi_nodes_(&pi_nodes), mgr_(&mgr), hold_(mgr),
      expansions_(std::move(expansions)),
      not_cache_(static_cast<std::size_t>(mgr.nvars()), Network::kConst0) {}

NodeId KfddBuilder::build(BddRef f) { return build_rec(f, 0); }

NodeId KfddBuilder::build_rec(BddRef f, int level) {
  if (BddManager::is_invalid(f)) {
    failed_ = true; // governor tripped; caller must discard the network
    return Network::kConst0;
  }
  if (f == BddManager::kFalse) return Network::kConst0;
  if (f == BddManager::kTrue) return Network::kConst1;
  // Skip variables the function no longer depends on (the BDD is ordered,
  // so anything above the top level is irrelevant).
  while (level < mgr_->nvars() && mgr_->level_of_ref(f) > level) ++level;
  if (mgr_->is_terminal(f))
    return f == BddManager::kTrue ? Network::kConst1 : Network::kConst0;

  const uint64_t key = (static_cast<uint64_t>(level) << 32) | f;
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  const int var = mgr_->var_at_level(level);
  const BddRef f0 = mgr_->lo_of(f);
  const BddRef f1 = mgr_->hi_of(f);
  const NodeId x = (*pi_nodes_)[static_cast<std::size_t>(var)];
  auto& nx_slot = not_cache_[static_cast<std::size_t>(var)];
  const auto nx = [&]() -> NodeId {
    if (nx_slot == Network::kConst0) nx_slot = net_->add_not(x);
    return nx_slot;
  };

  NodeId result = Network::kConst0;
  switch (expansions_[static_cast<std::size_t>(var)]) {
    case Expansion::Shannon: {
      const NodeId lo = build_rec(f0, level + 1);
      const NodeId hi = build_rec(f1, level + 1);
      if (lo == hi) { result = lo; break; }
      if (lo == Network::kConst0) {
        result = hi == Network::kConst1 ? x : net_->add_and(x, hi);
      } else if (hi == Network::kConst0) {
        result = lo == Network::kConst1 ? nx() : net_->add_and(nx(), lo);
      } else if (lo == Network::kConst1 && hi == Network::kConst1) {
        result = Network::kConst1;
      } else {
        const NodeId a = hi == Network::kConst1 ? x : net_->add_and(x, hi);
        const NodeId b = lo == Network::kConst1 ? nx() : net_->add_and(nx(), lo);
        result = net_->add_or(a, b);
      }
      break;
    }
    case Expansion::PositiveDavio:
    case Expansion::NegativeDavio: {
      const bool positive =
          expansions_[static_cast<std::size_t>(var)] == Expansion::PositiveDavio;
      const BddRef base_f = positive ? f0 : f1;
      const BddRef diff = mgr_->bdd_xor(f0, f1);
      const NodeId base = build_rec(base_f, level + 1);
      const NodeId d = build_rec(diff, level + 1);
      const NodeId lit = positive ? x : nx();
      if (d == Network::kConst0) { result = base; break; }
      const NodeId prod = d == Network::kConst1 ? lit : net_->add_and(lit, d);
      result = base == Network::kConst0 ? prod : net_->add_xor(base, prod);
      break;
    }
  }
  memo_.emplace(key, result);
  return result;
}

namespace {

std::size_t kfdd_cost(BddManager& mgr, const std::vector<BddRef>& outputs,
                      std::size_t num_pis, const std::vector<Expansion>& exp) {
  Network net;
  std::vector<NodeId> pis;
  pis.reserve(num_pis);
  for (std::size_t i = 0; i < num_pis; ++i) pis.push_back(net.add_pi());
  KfddBuilder builder(net, pis, mgr, exp);
  for (const BddRef f : outputs) net.add_po(builder.build(f));
  if (builder.failed()) // budget died mid-build: rank strictly worst
    return std::numeric_limits<std::size_t>::max();
  return network_stats(strash(net)).gates2;
}

// Clone-side candidate evaluation for the parallel search: imports the
// outputs into a private manager (a BddManager is single-threaded;
// import_bdd only reads the quiescent source) and prices the candidate
// there. The cost is the gate count of the network the BDDs induce, which
// is identical across managers as long as both use the same variable order
// — the caller guards on the identity order the clone starts with.
std::size_t kfdd_cost_clone(const BddManager& src,
                            const std::vector<BddRef>& outputs,
                            std::size_t num_pis,
                            const std::vector<Expansion>& exp,
                            ResourceGovernor* gov) {
  BddManager local(src.nvars());
  local.set_governor(gov);
  std::vector<BddRef> louts;
  louts.reserve(outputs.size());
  for (const BddRef f : outputs) {
    const BddRef lf = import_bdd(local, src, f);
    if (BddManager::is_invalid(lf))
      return std::numeric_limits<std::size_t>::max();
    local.ref(lf);
    louts.push_back(lf);
  }
  return kfdd_cost(local, louts, num_pis, exp);
}

bool identity_order(const BddManager& mgr) {
  for (int v = 0; v < mgr.nvars(); ++v)
    if (mgr.level_of(v) != v) return false;
  return true;
}

} // namespace

std::vector<Expansion> best_kfdd_decomposition(BddManager& mgr,
                                               const std::vector<BddRef>& outputs,
                                               const KfddSearchOptions& opt) {
  RMSYN_SPAN("kfdd-search");
  const auto n = static_cast<std::size_t>(mgr.nvars());
  // Candidate builds share this one manager; pin the outputs and collect
  // the Davio-difference garbage whenever it piles up.
  for (const BddRef f : outputs) mgr.ref(f);
  const std::size_t gc_watermark = mgr.node_count() * 2 + 2048;
  const auto cost_of = [&](const std::vector<Expansion>& exp) {
    const std::size_t c = kfdd_cost(mgr, outputs, n, exp);
    if (mgr.node_count() > gc_watermark) mgr.gc();
    return c;
  };
  ResourceGovernor* gov = mgr.governor();
  const auto out_of_budget = [&] { return gov != nullptr && gov->exhausted(); };
  std::vector<Expansion> best(n, Expansion::PositiveDavio);
  std::size_t best_cost = cost_of(best);
  const bool parallel = opt.pool != nullptr && identity_order(mgr);
  for (int pass = 0; pass < opt.greedy_passes && !out_of_budget(); ++pass) {
    bool improved = false;
    for (std::size_t v = 0; v < n && !out_of_budget(); ++v) {
      // The alternatives for v, in enumeration order. Both differ from the
      // current base only at v, so when the first one is accepted the
      // second serial candidate (updated base with v replaced) equals the
      // old base with v replaced — the two costs are independent of each
      // other and may be evaluated concurrently, as long as the strict
      // improvement test applies them in this same order.
      std::vector<Expansion> alts;
      for (const Expansion e : {Expansion::Shannon, Expansion::PositiveDavio,
                                Expansion::NegativeDavio})
        if (e != best[v]) alts.push_back(e);
      if (parallel) {
        std::vector<Future<std::size_t>> futs;
        futs.reserve(alts.size());
        for (const Expansion e : alts) {
          std::vector<Expansion> cand = best;
          cand[v] = e;
          futs.push_back(opt.pool->submit(
              [&mgr, &outputs, n, cand = std::move(cand), gov] {
                return kfdd_cost_clone(mgr, outputs, n, cand, gov);
              }));
        }
        for (std::size_t k = 0; k < alts.size(); ++k) {
          const std::size_t cost = opt.pool->wait(futs[k]);
          if (cost < best_cost) {
            best_cost = cost;
            best[v] = alts[k];
            improved = true;
          }
        }
        continue;
      }
      for (const Expansion e : alts) {
        std::vector<Expansion> cand = best;
        cand[v] = e;
        const std::size_t cost = cost_of(cand);
        if (cost < best_cost) {
          best_cost = cost;
          best = std::move(cand);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  for (const BddRef f : outputs) mgr.deref(f);
  return best;
}

Network kfdd_synthesize(const Network& spec, const KfddSearchOptions& opt,
                        std::vector<Expansion>* chosen) {
  RMSYN_SPAN("kfdd-synthesize");
  // Work in the spectrum-friendly variable order (carry-like inputs last)
  // so cross-output subgraph sharing materializes, then permute back.
  const std::vector<std::size_t> perm = spectrum_friendly_pi_order(spec);
  const Network spec_p = permute_pis(spec, perm);

  BddManager mgr(static_cast<int>(spec_p.pi_count()));
  const std::vector<BddRef> outs = output_bdds(mgr, spec_p);
  const std::vector<Expansion> exp = best_kfdd_decomposition(mgr, outs, opt);
  Network net;
  std::vector<NodeId> pis;
  for (std::size_t i = 0; i < spec_p.pi_count(); ++i)
    pis.push_back(net.add_pi(spec_p.name(spec_p.pis()[i])));
  KfddBuilder builder(net, pis, mgr, exp);
  for (std::size_t j = 0; j < spec_p.po_count(); ++j)
    net.add_po(builder.build(outs[j]), spec_p.po_name(j));

  if (chosen != nullptr) {
    // Report expansions in the spec's original variable numbering.
    chosen->assign(spec.pi_count(), Expansion::PositiveDavio);
    for (std::size_t k = 0; k < perm.size(); ++k) (*chosen)[perm[k]] = exp[k];
  }
  std::vector<std::size_t> inverse(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) inverse[perm[k]] = k;
  return strash(permute_pis(net, inverse));
}

} // namespace rmsyn
