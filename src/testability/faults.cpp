#include "testability/faults.hpp"

#include <sstream>

#include "bdd/bdd.hpp"

namespace rmsyn {

std::vector<Fault> enumerate_faults(const Network& net) {
  std::vector<Fault> faults;
  const auto live = net.live_mask();
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    faults.push_back({n, -1, false});
    faults.push_back({n, -1, true});
    if (t == GateType::Pi) continue;
    for (int k = 0; k < static_cast<int>(net.fanins(n).size()); ++k) {
      faults.push_back({n, k, false});
      faults.push_back({n, k, true});
    }
  }
  return faults;
}

namespace {

/// Word-parallel simulation with one injected fault.
std::vector<BitVec> simulate_faulty(const Network& net,
                                    const PatternSet& patterns,
                                    const Fault& fault) {
  const std::size_t np = patterns.num_patterns;
  BitVec ones(np);
  ones.set_all();
  std::vector<BitVec> value(net.node_count(), BitVec(np));
  value[Network::kConst1] = ones;
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    value[net.pis()[i]] = patterns.bits[i];

  const auto in_val = [&](NodeId n, std::size_t k) -> BitVec {
    if (n == fault.node && fault.fanin_index == static_cast<int>(k))
      return fault.stuck_value ? ones : BitVec(np);
    return value[net.fanins(n)[k]];
  };

  for (const NodeId n : net.topo_order()) {
    const auto& fi = net.fanins(n);
    const GateType t = net.type(n);
    if (t != GateType::Pi && t != GateType::Const0 && t != GateType::Const1) {
      BitVec out = in_val(n, 0);
      switch (t) {
        case GateType::Buf: break;
        case GateType::Not: out ^= ones; break;
        case GateType::And: case GateType::Nand:
          for (std::size_t k = 1; k < fi.size(); ++k) out &= in_val(n, k);
          if (t == GateType::Nand) out ^= ones;
          break;
        case GateType::Or: case GateType::Nor:
          for (std::size_t k = 1; k < fi.size(); ++k) out |= in_val(n, k);
          if (t == GateType::Nor) out ^= ones;
          break;
        case GateType::Xor: case GateType::Xnor:
          for (std::size_t k = 1; k < fi.size(); ++k) out ^= in_val(n, k);
          if (t == GateType::Xnor) out ^= ones;
          break;
        default: break;
      }
      value[n] = std::move(out);
    }
    if (n == fault.node && fault.fanin_index == -1)
      value[n] = fault.stuck_value ? ones : BitVec(np);
  }
  return value;
}

} // namespace

FaultSimResult fault_simulate(const Network& net, const PatternSet& patterns) {
  FaultSimResult result;
  const auto faults = enumerate_faults(net);
  result.total = faults.size();

  const auto good = simulate(net, patterns);
  for (const auto& fault : faults) {
    const auto bad = simulate_faulty(net, patterns, fault);
    bool detected = false;
    for (std::size_t i = 0; i < net.po_count() && !detected; ++i)
      detected = !(good[net.po(i)] == bad[net.po(i)]);
    if (detected) ++result.detected;
    else result.undetected.push_back(fault);
  }
  return result;
}

bool is_irredundant(const Network& net) {
  BddManager mgr(static_cast<int>(net.pi_count()));

  // Good outputs.
  const auto compute_outputs = [&](const Fault* fault) {
    std::vector<BddRef> f(net.node_count(), mgr.bdd_false());
    f[Network::kConst1] = mgr.bdd_true();
    for (std::size_t i = 0; i < net.pi_count(); ++i)
      f[net.pis()[i]] = mgr.var(static_cast<int>(i));
    const auto in_f = [&](NodeId n, std::size_t k) -> BddRef {
      if (fault != nullptr && n == fault->node &&
          fault->fanin_index == static_cast<int>(k))
        return fault->stuck_value ? mgr.bdd_true() : mgr.bdd_false();
      return f[net.fanins(n)[k]];
    };
    for (const NodeId n : net.topo_order()) {
      const auto& fi = net.fanins(n);
      const GateType t = net.type(n);
      if (t != GateType::Pi && t != GateType::Const0 && t != GateType::Const1) {
        BddRef acc = in_f(n, 0);
        switch (t) {
          case GateType::Buf: break;
          case GateType::Not: acc = mgr.bdd_not(acc); break;
          case GateType::And: case GateType::Nand:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_and(acc, in_f(n, k));
            if (t == GateType::Nand) acc = mgr.bdd_not(acc);
            break;
          case GateType::Or: case GateType::Nor:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_or(acc, in_f(n, k));
            if (t == GateType::Nor) acc = mgr.bdd_not(acc);
            break;
          case GateType::Xor: case GateType::Xnor:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_xor(acc, in_f(n, k));
            if (t == GateType::Xnor) acc = mgr.bdd_not(acc);
            break;
          default: break;
        }
        f[n] = acc;
      }
      if (fault != nullptr && n == fault->node && fault->fanin_index == -1)
        f[n] = fault->stuck_value ? mgr.bdd_true() : mgr.bdd_false();
    }
    std::vector<BddRef> out;
    for (std::size_t i = 0; i < net.po_count(); ++i) out.push_back(f[net.po(i)]);
    return out;
  };

  const auto good = compute_outputs(nullptr);
  for (const auto& fault : enumerate_faults(net)) {
    const auto bad = compute_outputs(&fault);
    bool detectable = false;
    for (std::size_t i = 0; i < good.size() && !detectable; ++i)
      detectable = good[i] != bad[i];
    if (!detectable) return false;
  }
  return true;
}

std::string to_string(const Fault& f, const Network& net) {
  std::ostringstream out;
  out << gate_type_name(net.type(f.node)) << f.node;
  if (f.fanin_index >= 0) out << ".in" << f.fanin_index;
  out << " s-a-" << (f.stuck_value ? 1 : 0);
  return out.str();
}

} // namespace rmsyn
