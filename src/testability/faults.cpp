#include "testability/faults.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "bdd/bdd.hpp"
#include "sched/pool.hpp"

namespace rmsyn {

std::vector<Fault> enumerate_faults(const Network& net) {
  std::vector<Fault> faults;
  const auto live = net.live_mask();
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (!live[n]) continue;
    const GateType t = net.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    faults.push_back({n, -1, false});
    faults.push_back({n, -1, true});
    if (t == GateType::Pi) continue;
    for (int k = 0; k < static_cast<int>(net.fanins(n).size()); ++k) {
      faults.push_back({n, k, false});
      faults.push_back({n, k, true});
    }
  }
  return faults;
}

namespace {

/// Word-parallel simulation with one injected fault.
std::vector<BitVec> simulate_faulty(const Network& net,
                                    const PatternSet& patterns,
                                    const Fault& fault) {
  const std::size_t np = patterns.num_patterns;
  BitVec ones(np);
  ones.set_all();
  std::vector<BitVec> value(net.node_count(), BitVec(np));
  value[Network::kConst1] = ones;
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    value[net.pis()[i]] = patterns.bits[i];

  const auto in_val = [&](NodeId n, std::size_t k) -> BitVec {
    if (n == fault.node && fault.fanin_index == static_cast<int>(k))
      return fault.stuck_value ? ones : BitVec(np);
    return value[net.fanins(n)[k]];
  };

  for (const NodeId n : net.topo_order()) {
    const auto& fi = net.fanins(n);
    const GateType t = net.type(n);
    if (t != GateType::Pi && t != GateType::Const0 && t != GateType::Const1) {
      BitVec out = in_val(n, 0);
      switch (t) {
        case GateType::Buf: break;
        case GateType::Not: out ^= ones; break;
        case GateType::And: case GateType::Nand:
          for (std::size_t k = 1; k < fi.size(); ++k) out &= in_val(n, k);
          if (t == GateType::Nand) out ^= ones;
          break;
        case GateType::Or: case GateType::Nor:
          for (std::size_t k = 1; k < fi.size(); ++k) out |= in_val(n, k);
          if (t == GateType::Nor) out ^= ones;
          break;
        case GateType::Xor: case GateType::Xnor:
          for (std::size_t k = 1; k < fi.size(); ++k) out ^= in_val(n, k);
          if (t == GateType::Xnor) out ^= ones;
          break;
        default: break;
      }
      value[n] = std::move(out);
    }
    if (n == fault.node && fault.fanin_index == -1)
      value[n] = fault.stuck_value ? ones : BitVec(np);
  }
  return value;
}

} // namespace

FaultSimResult fault_simulate_full(const Network& net,
                                   const PatternSet& patterns) {
  FaultSimResult result;
  const auto faults = enumerate_faults(net);
  result.total = faults.size();

  const auto good = simulate(net, patterns);
  for (const auto& fault : faults) {
    const auto bad = simulate_faulty(net, patterns, fault);
    bool detected = false;
    for (std::size_t i = 0; i < net.po_count() && !detected; ++i)
      detected = !(good[net.po(i)] == bad[net.po(i)]);
    if (detected) ++result.detected;
    else result.undetected.push_back(fault);
  }
  return result;
}

FaultSimResult fault_simulate(const Network& net, const PatternSet& patterns,
                              const FaultSimOptions& opt) {
  FaultSimResult result;
  const auto faults = enumerate_faults(net);
  result.total = faults.size();
  const std::size_t np = patterns.num_patterns;
  if (np == 0 || faults.empty()) {
    result.undetected = faults;
    return result;
  }

  // One good pass per block; together the blocks cost exactly one full
  // simulation of the whole set.
  std::size_t bp = opt.drop_faults ? opt.block_patterns : np;
  bp = std::max<std::size_t>(64, (bp + 63) / 64 * 64);
  const std::size_t nblocks = (np + bp - 1) / bp;
  std::vector<std::unique_ptr<SimState>> blocks(nblocks);
  const auto build_block = [&](std::size_t b) {
    const std::size_t p0 = b * bp;
    // The single-block case gets inner word sharding instead — with one
    // block, block-level parallelism has nothing to fan out.
    ThreadPool* inner = nblocks == 1 ? opt.pool : nullptr;
    blocks[b] = std::make_unique<SimState>(
        net, pattern_block(patterns, p0, std::min(bp, np - p0)), inner);
    return true;
  };
  if (opt.pool != nullptr && opt.pool->worker_count() > 0 && nblocks > 1) {
    // Block states are independent; each slot writes its own index, so
    // the resulting vector is identical to serial construction.
    std::vector<Future<bool>> futs;
    futs.reserve(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b)
      futs.push_back(opt.pool->submit([&build_block, b] { return build_block(b); }));
    for (auto& fut : futs) opt.pool->wait(fut);
  } else {
    for (std::size_t b = 0; b < nblocks; ++b) build_block(b);
  }

  // A fault is detected iff SOME pattern distinguishes it, so probing block
  // by block and stopping at the first hit decides exactly the same set as
  // one monolithic pass. Counters are per-fault sums, hence independent of
  // how the fault range is chunked across workers.
  std::vector<uint8_t> detected(faults.size(), 0);
  const auto run_chunk = [&](std::size_t lo, std::size_t hi) {
    SimStats st;
    FaultProber prober(*blocks.front());
    for (std::size_t i = lo; i < hi; ++i) {
      const Fault& f = faults[i];
      for (std::size_t b = 0; b < nblocks; ++b) {
        if (!prober.detects(*blocks[b], f.node, f.fanin_index, f.stuck_value))
          continue;
        detected[i] = 1;
        if (b + 1 < nblocks) {
          ++st.faults_dropped;
          st.blocks_skipped += nblocks - b - 1;
        }
        break;
      }
    }
    st.accumulate(prober.stats());
    return st;
  };

  SimStats stats;
  if (opt.pool != nullptr && opt.pool->worker_count() > 0 &&
      faults.size() > 1) {
    const std::size_t nchunks = std::min<std::size_t>(
        faults.size(), static_cast<std::size_t>(opt.pool->slot_count()) * 4);
    const std::size_t step = (faults.size() + nchunks - 1) / nchunks;
    std::vector<Future<SimStats>> futs;
    for (std::size_t lo = 0; lo < faults.size(); lo += step) {
      const std::size_t hi = std::min(lo + step, faults.size());
      futs.push_back(opt.pool->submit([&, lo, hi] { return run_chunk(lo, hi); }));
    }
    for (auto& fut : futs) stats.accumulate(opt.pool->wait(fut));
  } else {
    stats.accumulate(run_chunk(0, faults.size()));
  }
  for (const auto& b : blocks) stats.accumulate(b->stats());

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) ++result.detected;
    else result.undetected.push_back(faults[i]);
  }
  if (opt.stats != nullptr) opt.stats->accumulate(stats);
  return result;
}

bool is_irredundant(const Network& net) {
  BddManager mgr(static_cast<int>(net.pi_count()));

  // Good outputs.
  const auto compute_outputs = [&](const Fault* fault) {
    std::vector<BddRef> f(net.node_count(), mgr.bdd_false());
    f[Network::kConst1] = mgr.bdd_true();
    for (std::size_t i = 0; i < net.pi_count(); ++i)
      f[net.pis()[i]] = mgr.var(static_cast<int>(i));
    const auto in_f = [&](NodeId n, std::size_t k) -> BddRef {
      if (fault != nullptr && n == fault->node &&
          fault->fanin_index == static_cast<int>(k))
        return fault->stuck_value ? mgr.bdd_true() : mgr.bdd_false();
      return f[net.fanins(n)[k]];
    };
    for (const NodeId n : net.topo_order()) {
      const auto& fi = net.fanins(n);
      const GateType t = net.type(n);
      if (t != GateType::Pi && t != GateType::Const0 && t != GateType::Const1) {
        BddRef acc = in_f(n, 0);
        switch (t) {
          case GateType::Buf: break;
          case GateType::Not: acc = mgr.bdd_not(acc); break;
          case GateType::And: case GateType::Nand:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_and(acc, in_f(n, k));
            if (t == GateType::Nand) acc = mgr.bdd_not(acc);
            break;
          case GateType::Or: case GateType::Nor:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_or(acc, in_f(n, k));
            if (t == GateType::Nor) acc = mgr.bdd_not(acc);
            break;
          case GateType::Xor: case GateType::Xnor:
            for (std::size_t k = 1; k < fi.size(); ++k)
              acc = mgr.bdd_xor(acc, in_f(n, k));
            if (t == GateType::Xnor) acc = mgr.bdd_not(acc);
            break;
          default: break;
        }
        f[n] = acc;
      }
      if (fault != nullptr && n == fault->node && fault->fanin_index == -1)
        f[n] = fault->stuck_value ? mgr.bdd_true() : mgr.bdd_false();
    }
    std::vector<BddRef> out;
    for (std::size_t i = 0; i < net.po_count(); ++i) out.push_back(f[net.po(i)]);
    return out;
  };

  const auto good = compute_outputs(nullptr);
  for (const auto& fault : enumerate_faults(net)) {
    const auto bad = compute_outputs(&fault);
    bool detectable = false;
    for (std::size_t i = 0; i < good.size() && !detectable; ++i)
      detectable = good[i] != bad[i];
    if (!detectable) return false;
  }
  return true;
}

std::string to_string(const Fault& f, const Network& net) {
  std::ostringstream out;
  out << gate_type_name(net.type(f.node)) << f.node;
  if (f.fanin_index >= 0) out << ".in" << f.fanin_index;
  out << " s-a-" << (f.stuck_value ? 1 : 0);
  return out.str();
}

} // namespace rmsyn
