// Single stuck-at fault machinery for the paper's testability claims (§1,
// §6): the synthesized networks are irredundant and the FPRM-derived PI
// pattern sets (AZ, AO, OC, SA1) form a complete single-stuck-at test set —
// no conventional ATPG required.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "network/simulate.hpp"

namespace rmsyn {

struct Fault {
  NodeId node = 0;
  int fanin_index = -1; ///< -1 = output (stem) fault, else that input pin
  bool stuck_value = false;
};

/// All single stuck-at faults on the live cone: stem faults on every gate
/// and PI, pin faults on every gate input (fanout branches).
std::vector<Fault> enumerate_faults(const Network& net);

struct FaultSimResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<Fault> undetected;
  double coverage() const {
    return total == 0 ? 1.0 : static_cast<double>(detected) /
                                   static_cast<double>(total);
  }
};

/// Parallel-pattern fault simulation: simulates every fault against the
/// whole pattern set (64 patterns per word) and reports coverage.
FaultSimResult fault_simulate(const Network& net, const PatternSet& patterns);

/// True when the network is single-stuck-at irredundant: every fault is
/// detectable by some input vector (checked exactly with BDDs).
bool is_irredundant(const Network& net);

std::string to_string(const Fault& f, const Network& net);

} // namespace rmsyn
