// Single stuck-at fault machinery for the paper's testability claims (§1,
// §6): the synthesized networks are irredundant and the FPRM-derived PI
// pattern sets (AZ, AO, OC, SA1) form a complete single-stuck-at test set —
// no conventional ATPG required.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "network/simulate.hpp"
#include "sim/sim.hpp"

namespace rmsyn {

class ThreadPool; // sched/pool.hpp

struct Fault {
  NodeId node = 0;
  int fanin_index = -1; ///< -1 = output (stem) fault, else that input pin
  bool stuck_value = false;
};

/// All single stuck-at faults on the live cone: stem faults on every gate
/// and PI, pin faults on every gate input (fanout branches).
std::vector<Fault> enumerate_faults(const Network& net);

struct FaultSimResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<Fault> undetected;
  double coverage() const {
    return total == 0 ? 1.0 : static_cast<double>(detected) /
                                   static_cast<double>(total);
  }
};

struct FaultSimOptions {
  /// Split the pattern set into blocks and stop probing a fault at the
  /// first detecting block (classic fault dropping). Off = one block over
  /// the whole set. Detection results are identical either way; dropping
  /// only skips work.
  bool drop_faults = true;
  /// Patterns per block, rounded up to a multiple of 64 (word-aligned
  /// blocks make the good values plain word slices).
  std::size_t block_patterns = 256;
  /// Run fault chunks on this pool (null = serial). Each worker probes a
  /// disjoint fault range with its own FaultProber against shared const
  /// block states, so results AND counters are bit-identical to serial.
  ThreadPool* pool = nullptr;
  /// Engine counters accumulated here when non-null.
  SimStats* stats = nullptr;
};

/// Event-driven parallel-pattern fault simulation (sim/sim.hpp): one good
/// pass per pattern block, then each fault is a single-node event whose
/// cone is propagated until a PO differs — with fault dropping across
/// blocks. Detected/undetected sets are identical to fault_simulate_full.
FaultSimResult fault_simulate(const Network& net, const PatternSet& patterns,
                              const FaultSimOptions& opt = {});

/// Reference implementation: re-simulates the whole network once per fault.
/// Kept as the cross-check and benchmark baseline for the incremental
/// engine; use fault_simulate for real work.
FaultSimResult fault_simulate_full(const Network& net,
                                   const PatternSet& patterns);

/// True when the network is single-stuck-at irredundant: every fault is
/// detectable by some input vector (checked exactly with BDDs).
bool is_irredundant(const Network& net);

std::string to_string(const Fault& f, const Network& net);

} // namespace rmsyn
